"""The wire protocol end-to-end: a real asyncio server over localhost,
blocking clients, row-for-row identity with the in-process path, the
CLOSE/lock-lifetime contract over the socket, error-code round-trips,
the handshake stub, connection capping, and a concurrent socket stress
run sharing one service's adaptive state."""

from __future__ import annotations

import threading

import pytest

import repro.client
from repro import (
    PostgresRawConfig,
    PostgresRawService,
    RawServer,
    generate_csv,
    uniform_table_spec,
)
from repro.errors import (
    CatalogError,
    CursorClosedError,
    PlanningError,
    ProtocolError,
    ServiceError,
)

SQL = "SELECT a0, a1 FROM t WHERE a2 < 500000"

QUERIES = [
    SQL,
    "SELECT SUM(a2) AS s FROM t WHERE a1 < 600000",
    "SELECT a0, a3 FROM t WHERE a2 < 150000",
    "SELECT COUNT(*) AS n FROM t WHERE a3 < 400000",
]


@pytest.fixture
def table_csv(tmp_path):
    path = tmp_path / "t.csv"
    schema = generate_csv(
        path, uniform_table_spec(n_attrs=6, n_rows=4_000, seed=99)
    )
    return path, schema


@pytest.fixture
def served(table_csv):
    """A service with one table behind a started wire server."""
    path, schema = table_csv
    config = PostgresRawConfig(
        server_port=0, batch_size=128, stream_queue_batches=2
    )
    with PostgresRawService(config) as service:
        service.register_csv("t", path, schema)
        server = RawServer(service).start()
        try:
            yield service, server
        finally:
            server.stop()


def wire_connect(server, **kwargs):
    return repro.client.connect(port=server.port, **kwargs)


def assert_write_lock_free(service, table, timeout=5.0):
    """The table's exclusive lock is takeable within ``timeout``."""
    lock = service.table_lock(table)
    acquired = threading.Event()

    def taker():
        lock.acquire_write()
        acquired.set()
        lock.release_write()

    t = threading.Thread(target=taker, daemon=True)
    t.start()
    assert acquired.wait(timeout), f"write lock on {table!r} still held"
    t.join(timeout=timeout)


class TestWireIdentity:
    def test_socket_rows_match_in_process_rows(self, served):
        service, server = served
        reference = service.query(SQL).rows
        with wire_connect(server) as conn:
            assert conn.query(SQL).rows == reference

    def test_multi_batch_stream_is_batched_on_the_wire(self, served):
        service, server = served
        reference = service.query("SELECT a0 FROM t").rows
        with wire_connect(server) as conn:
            with conn.cursor("SELECT a0 FROM t") as cursor:
                batches = list(cursor.batches())
            assert len(batches) > 1  # 4000 rows / batch_size 128
            rows = [
                row for batch in batches
                for row in zip(batch.column("a0").to_pylist())
            ]
        assert rows == reference

    def test_every_query_shape_round_trips(self, served):
        service, server = served
        with wire_connect(server) as conn:
            for sql in QUERIES:
                assert conn.query(sql).rows == service.query(sql).rows

    def test_fetch_styles_agree_over_the_wire(self, served):
        service, server = served
        reference = service.query(SQL).rows
        with wire_connect(server) as conn:
            one_by_one = []
            with conn.cursor(SQL) as cursor:
                while True:
                    row = cursor.fetchone()
                    if row is None:
                        break
                    one_by_one.append(row)
            assert one_by_one == reference
            chunks = []
            with conn.cursor(SQL) as cursor:
                while True:
                    got = cursor.fetchmany(97)
                    chunks.extend(got)
                    if len(got) < 97:
                        break
            assert chunks == reference

    def test_mixed_types_and_nulls_round_trip(self, served, mixed_csv):
        # ints, floats, low-cardinality text, dates, booleans, NULLs.
        service, server = served
        path, schema = mixed_csv
        service.register_csv("m", path, schema)
        sql = "SELECT id, price, label, day, flag, qty FROM m"
        reference = service.query(sql).rows
        with wire_connect(server) as conn:
            got = conn.query(sql).rows
        assert got == reference
        assert any(v is None for row in got for v in row)  # NULLs kept


class TestWireLifecycle:
    def test_early_close_releases_server_side_cursor(self, served):
        service, server = served
        with wire_connect(server) as conn:
            cursor = conn.cursor("SELECT a0 FROM t")
            assert cursor.fetchone() is not None
            cursor.close()
            # The producing scan is gone: exclusive-path work (a write
            # lock) proceeds immediately, and no cursor stays open.
            assert service.cursor_stats()["open"] == 0
            assert_write_lock_free(service, "t")
            # The connection is immediately reusable.
            assert conn.query("SELECT COUNT(*) AS n FROM t").scalar() == 4000

    def test_closed_cursor_refuses_fetches(self, served):
        _, server = served
        with wire_connect(server) as conn:
            cursor = conn.cursor(SQL)
            cursor.close()
            with pytest.raises(CursorClosedError):
                cursor.fetchone()

    def test_new_cursor_supersedes_active_stream(self, served):
        service, server = served
        reference = service.query(SQL).rows
        with wire_connect(server) as conn:
            first = conn.cursor("SELECT a0 FROM t")
            first.fetchone()
            second = conn.cursor(SQL)  # implicitly closes `first`
            assert first.closed
            assert second.fetchall().rows == reference

    def test_connection_close_mid_stream_frees_service(self, served):
        service, server = served
        conn = wire_connect(server)
        cursor = conn.cursor("SELECT a0 FROM t")
        assert cursor.fetchone() is not None
        conn.close()  # closes the active stream first, then GOODBYE
        assert_write_lock_free(service, "t")
        assert service.cursor_stats()["open"] == 0

    def test_server_stop_leaves_no_leaked_slots_or_cursors(self, table_csv):
        path, schema = table_csv
        config = PostgresRawConfig(server_port=0, batch_size=128)
        with PostgresRawService(config) as service:
            service.register_csv("t", path, schema)
            server = RawServer(service).start()
            conn = wire_connect(server)
            cursor = conn.cursor("SELECT a0 FROM t")
            assert cursor.fetchone() is not None
            server.stop()  # client still holds an open stream
            assert service.cursor_stats()["open"] == 0
            stats = service.scheduler.stats()
            assert stats["active"] == 0 and stats["waiting"] == 0
            conn.close()

    def test_connection_stats_track_traffic(self, served):
        _, server = served
        with wire_connect(server) as conn:
            conn.query(SQL)
            stats = server.connection_stats()
            assert stats["open"] == 1
            assert stats["queries"] == 1
            assert stats["rows_sent"] > 0
            assert stats["frames_sent"] >= 3  # WELCOME + ROWSET + ROWS...
            (connection,) = stats["connections"]
            assert connection["queries"] == 1


class TestWireErrors:
    def test_planning_error_round_trips(self, served):
        _, server = served
        with wire_connect(server) as conn:
            with pytest.raises(PlanningError, match="nope"):
                conn.query("SELECT nope FROM t")
            # The connection survives a failed query.
            assert conn.query("SELECT COUNT(*) AS n FROM t").scalar() == 4000

    def test_catalog_error_round_trips(self, served):
        _, server = served
        with wire_connect(server) as conn:
            with pytest.raises(CatalogError):
                conn.query("SELECT a0 FROM missing_table")

    def test_sql_syntax_error_round_trips(self, served):
        from repro.errors import SQLSyntaxError

        _, server = served
        with wire_connect(server) as conn:
            with pytest.raises(SQLSyntaxError):
                conn.query("SELEKT a0 FROM t")

    def test_auth_token_stub(self, table_csv):
        path, schema = table_csv
        config = PostgresRawConfig(server_port=0)
        with PostgresRawService(config) as service:
            service.register_csv("t", path, schema)
            server = RawServer(service, auth_token="sesame").start()
            try:
                with pytest.raises(ProtocolError, match="auth token"):
                    wire_connect(server)
                with pytest.raises(ProtocolError, match="auth token"):
                    wire_connect(server, token="wrong")
                with wire_connect(server, token="sesame") as conn:
                    assert conn.session_id is not None
            finally:
                server.stop()

    def test_max_connections_turns_extras_away(self, table_csv):
        path, schema = table_csv
        config = PostgresRawConfig(server_port=0)
        with PostgresRawService(config) as service:
            service.register_csv("t", path, schema)
            server = RawServer(service, max_connections=2).start()
            try:
                first = wire_connect(server)
                second = wire_connect(server)
                with pytest.raises(ServiceError, match="max_connections"):
                    wire_connect(server)
                first.close()
                second.close()
            finally:
                server.stop()
            assert server.connection_stats()["rejected"] == 1


class TestWireStress:
    """The ISSUE's stress variant: many socket clients, one shared
    adaptive state, row-for-row identity under concurrency."""

    N_CLIENTS = 6
    ROUNDS = 3

    def test_concurrent_socket_clients_share_one_service(self, served):
        service, server = served
        reference = {sql: service.query(sql).rows for sql in QUERIES}
        start = threading.Barrier(self.N_CLIENTS + 1, timeout=60)
        failures: list[str] = []

        def client(idx: int) -> None:
            try:
                with wire_connect(server) as conn:
                    start.wait()
                    for round_no in range(self.ROUNDS):
                        for sql in QUERIES:
                            got = conn.query(sql).rows
                            if got != reference[sql]:
                                failures.append(
                                    f"client {idx} round {round_no}: "
                                    f"rows diverged for {sql!r}"
                                )
                        # Every other round, abandon a stream mid-way so
                        # CLOSE frames interleave with full streams.
                        if round_no % 2 == 0:
                            cursor = conn.cursor("SELECT a0 FROM t")
                            cursor.fetchone()
                            cursor.close()
            except Exception as exc:  # pragma: no cover - failure path
                failures.append(f"client {idx}: {exc!r}")

        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(self.N_CLIENTS)
        ]
        for t in threads:
            t.start()
        start.wait()
        for t in threads:
            t.join(timeout=120)
        assert failures == []
        # Accounting balances: every admitted query completed, every
        # cursor retired, no connection left open.
        stats = service.scheduler.stats()
        assert stats["active"] == 0 and stats["waiting"] == 0
        assert stats["admitted"] == stats["completed"]
        assert service.cursor_stats()["open"] == 0
        server_stats = server.connection_stats()
        assert server_stats["queries"] == self.N_CLIENTS * (
            self.ROUNDS * len(QUERIES) + 2  # + the abandoned streams
        )
