"""The wire protocol end-to-end: a real asyncio server over localhost,
blocking clients, row-for-row identity with the in-process path (under
both ROWS encodings), multiplexed cursors on one connection, the
CLOSE/lock-lifetime contract over the socket, error-code round-trips,
the handshake stub, v1-peer compatibility, connection capping and
stream capping, the client connection pool, and a concurrent socket
stress run sharing one service's adaptive state."""

from __future__ import annotations

import json
import socket
import struct
import threading

import pytest

import repro.client
from repro import (
    PostgresRawConfig,
    PostgresRawService,
    RawServer,
    generate_csv,
    uniform_table_spec,
)
from repro.client import ConnectionPool
from repro.errors import (
    CatalogError,
    CursorClosedError,
    PlanningError,
    ProtocolError,
    ServiceError,
    StreamLimitError,
)

SQL = "SELECT a0, a1 FROM t WHERE a2 < 500000"

QUERIES = [
    SQL,
    "SELECT SUM(a2) AS s FROM t WHERE a1 < 600000",
    "SELECT a0, a3 FROM t WHERE a2 < 150000",
    "SELECT COUNT(*) AS n FROM t WHERE a3 < 400000",
]


@pytest.fixture
def table_csv(tmp_path):
    path = tmp_path / "t.csv"
    schema = generate_csv(
        path, uniform_table_spec(n_attrs=6, n_rows=4_000, seed=99)
    )
    return path, schema


@pytest.fixture
def served(table_csv):
    """A service with one table behind a started wire server."""
    path, schema = table_csv
    config = PostgresRawConfig(
        server_port=0, batch_size=128, stream_queue_batches=2
    )
    with PostgresRawService(config) as service:
        service.register_csv("t", path, schema)
        server = RawServer(service).start()
        try:
            yield service, server
        finally:
            server.stop()


def wire_connect(server, **kwargs):
    return repro.client.Connection("127.0.0.1", server.port, **kwargs)


def assert_write_lock_free(service, table, timeout=5.0):
    """The table's exclusive lock is takeable within ``timeout``."""
    lock = service.table_lock(table)
    acquired = threading.Event()

    def taker():
        lock.acquire_write()
        acquired.set()
        lock.release_write()

    t = threading.Thread(target=taker, daemon=True)
    t.start()
    assert acquired.wait(timeout), f"write lock on {table!r} still held"
    t.join(timeout=timeout)


class TestWireIdentity:
    def test_socket_rows_match_in_process_rows(self, served):
        service, server = served
        reference = service.query(SQL).rows
        with wire_connect(server) as conn:
            assert conn.query(SQL).rows == reference

    def test_multi_batch_stream_is_batched_on_the_wire(self, served):
        service, server = served
        reference = service.query("SELECT a0 FROM t").rows
        with wire_connect(server) as conn:
            with conn.cursor("SELECT a0 FROM t") as cursor:
                batches = list(cursor.batches())
            assert len(batches) > 1  # 4000 rows / batch_size 128
            rows = [
                row for batch in batches
                for row in zip(batch.column("a0").to_pylist())
            ]
        assert rows == reference

    def test_every_query_shape_round_trips(self, served):
        service, server = served
        with wire_connect(server) as conn:
            for sql in QUERIES:
                assert conn.query(sql).rows == service.query(sql).rows

    def test_fetch_styles_agree_over_the_wire(self, served):
        service, server = served
        reference = service.query(SQL).rows
        with wire_connect(server) as conn:
            one_by_one = []
            with conn.cursor(SQL) as cursor:
                while True:
                    row = cursor.fetchone()
                    if row is None:
                        break
                    one_by_one.append(row)
            assert one_by_one == reference
            chunks = []
            with conn.cursor(SQL) as cursor:
                while True:
                    got = cursor.fetchmany(97)
                    chunks.extend(got)
                    if len(got) < 97:
                        break
            assert chunks == reference

    def test_mixed_types_and_nulls_round_trip(self, served, mixed_csv):
        # ints, floats, low-cardinality text, dates, booleans, NULLs.
        service, server = served
        path, schema = mixed_csv
        service.register_csv("m", path, schema)
        sql = "SELECT id, price, label, day, flag, qty FROM m"
        reference = service.query(sql).rows
        with wire_connect(server) as conn:
            got = conn.query(sql).rows
        assert got == reference
        assert any(v is None for row in got for v in row)  # NULLs kept


class TestWireLifecycle:
    def test_early_close_releases_server_side_cursor(self, served):
        service, server = served
        with wire_connect(server) as conn:
            cursor = conn.cursor("SELECT a0 FROM t")
            assert cursor.fetchone() is not None
            cursor.close()
            # The producing scan is gone: exclusive-path work (a write
            # lock) proceeds immediately, and no cursor stays open.
            assert service.cursor_stats()["open"] == 0
            assert_write_lock_free(service, "t")
            # The connection is immediately reusable.
            assert conn.query("SELECT COUNT(*) AS n FROM t").scalar() == 4000

    def test_closed_cursor_refuses_fetches(self, served):
        _, server = served
        with wire_connect(server) as conn:
            cursor = conn.cursor(SQL)
            cursor.close()
            with pytest.raises(CursorClosedError):
                cursor.fetchone()

    def test_new_cursor_leaves_active_stream_untouched(self, served):
        # Protocol v2: cursors multiplex — opening a second stream no
        # longer supersedes the first (the v1 sequential behavior).
        service, server = served
        reference = service.query(SQL).rows
        full = service.query("SELECT a0 FROM t").rows
        with wire_connect(server) as conn:
            first = conn.cursor("SELECT a0 FROM t")
            head = first.fetchone()
            second = conn.cursor(SQL)
            assert not first.closed
            assert second.fetchall().rows == reference
            assert [head] + first.fetchall().rows == full

    def test_connection_close_mid_stream_frees_service(self, served):
        service, server = served
        conn = wire_connect(server)
        cursor = conn.cursor("SELECT a0 FROM t")
        assert cursor.fetchone() is not None
        conn.close()  # closes the active stream first, then GOODBYE
        assert_write_lock_free(service, "t")
        assert service.cursor_stats()["open"] == 0

    def test_server_stop_leaves_no_leaked_slots_or_cursors(self, table_csv):
        path, schema = table_csv
        config = PostgresRawConfig(server_port=0, batch_size=128)
        with PostgresRawService(config) as service:
            service.register_csv("t", path, schema)
            server = RawServer(service).start()
            conn = wire_connect(server)
            cursor = conn.cursor("SELECT a0 FROM t")
            assert cursor.fetchone() is not None
            server.stop()  # client still holds an open stream
            assert service.cursor_stats()["open"] == 0
            stats = service.scheduler.stats()
            assert stats["active"] == 0 and stats["waiting"] == 0
            conn.close()

    def test_connection_stats_track_traffic(self, served):
        _, server = served
        with wire_connect(server) as conn:
            conn.query(SQL)
            stats = server.connection_stats()
            assert stats["open"] == 1
            assert stats["queries"] == 1
            assert stats["rows_sent"] > 0
            assert stats["frames_sent"] >= 3  # WELCOME + ROWSET + ROWS...
            (connection,) = stats["connections"]
            assert connection["queries"] == 1


class TestMultiplexing:
    """Protocol v2: several cursors stream over one connection."""

    MUX_QUERIES = [
        "SELECT a0, a1 FROM t WHERE a2 < 500000",
        "SELECT a0 FROM t",
        "SELECT a1, a2 FROM t WHERE a0 < 700000",
    ]

    def test_multiplexed_cursors_match_separate_connections(self, served):
        # The acceptance gate: K cursors multiplexed on ONE connection
        # return row-identical results to K separate connections.
        service, server = served
        separate = []
        for sql in self.MUX_QUERIES:
            with wire_connect(server) as conn:
                separate.append(conn.query(sql).rows)
        with wire_connect(server) as conn:
            cursors = [conn.cursor(sql) for sql in self.MUX_QUERIES]
            assert conn.active_streams == len(cursors)
            # Round-robin consumption in odd chunks: frames for every
            # stream interleave through the demultiplexer.
            results: list[list] = [[] for _ in cursors]
            live = set(range(len(cursors)))
            while live:
                for i in sorted(live):
                    got = cursors[i].fetchmany(97)
                    results[i].extend(got)
                    if len(got) < 97:
                        live.discard(i)
            assert conn.active_streams == 0
        for got, reference in zip(results, separate):
            assert got == reference
        assert service.cursor_stats()["open"] == 0

    def test_threads_share_one_connection(self, served):
        service, server = served
        reference = {
            sql: service.query(sql).rows for sql in self.MUX_QUERIES
        }
        failures: list[str] = []
        with wire_connect(server) as conn:

            def worker(sql: str) -> None:
                try:
                    got = conn.cursor(sql).fetchall().rows
                    if got != reference[sql]:
                        failures.append(f"rows diverged for {sql!r}")
                except Exception as exc:  # pragma: no cover - failure path
                    failures.append(f"{sql!r}: {exc!r}")

            threads = [
                threading.Thread(target=worker, args=(sql,))
                for sql in self.MUX_QUERIES
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
        assert failures == []

    def test_closing_one_stream_leaves_siblings_streaming(self, served):
        service, server = served
        reference = service.query(SQL).rows
        with wire_connect(server) as conn:
            keeper = conn.cursor(SQL)
            first = keeper.fetchone()
            victim = conn.cursor("SELECT a0 FROM t")
            victim.fetchone()
            victim.close()
            assert conn.active_streams == 1
            assert [first] + keeper.fetchall().rows == reference
        assert service.cursor_stats()["open"] == 0

    def test_stream_limit_enforced_client_side(self, table_csv):
        path, schema = table_csv
        config = PostgresRawConfig(
            server_port=0, max_streams_per_connection=2
        )
        with PostgresRawService(config) as service:
            service.register_csv("t", path, schema)
            with RawServer(service) as server:
                with wire_connect(server) as conn:
                    assert conn.max_streams == 2
                    a = conn.cursor("SELECT a0 FROM t")
                    b = conn.cursor("SELECT a1 FROM t")
                    with pytest.raises(StreamLimitError, match="2 streams"):
                        conn.cursor("SELECT a2 FROM t")
                    a.close()  # room again
                    c = conn.cursor("SELECT a2 FROM t")
                    assert len(c.fetchall().rows) == 4000
                    b.close()

    def test_stream_limit_enforced_server_side(self, table_csv):
        # A raw v2 speaker that ignores the advertised max_streams: the
        # server answers the over-limit QUERY with a stream_limit ERROR
        # and keeps the other streams healthy.
        path, schema = table_csv
        config = PostgresRawConfig(
            server_port=0, max_streams_per_connection=2, batch_size=128
        )
        with PostgresRawService(config) as service:
            service.register_csv("t", path, schema)
            with RawServer(service) as server:
                raw = _RawWireClient(server.port)
                try:
                    raw.send(
                        _RawWireClient.HELLO,
                        {"version": 2, "encodings": ["json"]},
                    )
                    _, welcome = raw.read()
                    assert welcome["max_streams"] == 2
                    for qid in (1, 2, 3):
                        raw.send(3, {"qid": qid, "sql": "SELECT a0 FROM t"})
                    code = None
                    for _ in range(10_000):  # drain until the refusal
                        ftype, payload = raw.read()
                        if ftype == 7:  # ERROR
                            code = payload["code"]
                            assert payload["qid"] == 3
                            break
                    assert code == "stream_limit"
                finally:
                    raw.close()
            assert server.connection_stats()["streams_refused"] == 1


class _RawWireClient:
    """Hand-rolled framing for protocol-conformance tests (no client
    library in the way — frames exactly as a wire peer would emit)."""

    HELLO, QUERY, CLOSE, GOODBYE = 0x01, 0x03, 0x08, 0x09

    def __init__(self, port: int) -> None:
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=30)
        self.reader = self.sock.makefile("rb")

    def send(self, ftype: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.sock.sendall(
            struct.pack("!I", len(body) + 1) + bytes((ftype,)) + body
        )

    def read(self) -> tuple[int, dict]:
        header = self.reader.read(4)
        assert len(header) == 4, "server hung up mid-conversation"
        (length,) = struct.unpack("!I", header)
        body = self.reader.read(length)
        assert len(body) == length
        return body[0], json.loads(body[1:].decode("utf-8"))

    def close(self) -> None:
        try:
            self.reader.close()
            self.sock.close()
        except OSError:
            pass


class TestEncodingNegotiation:
    def test_default_connection_speaks_binary(self, served):
        service, server = served
        reference = service.query(SQL).rows
        with wire_connect(server) as conn:
            assert conn.version == 2
            assert conn.encoding == "binary"
            assert conn.query(SQL).rows == reference
        assert server.connection_stats()["bytes_by_encoding"]["binary"] > 0

    def test_client_can_pin_the_json_floor(self, served):
        service, server = served
        reference = service.query(SQL).rows
        with wire_connect(server, encodings=("json",)) as conn:
            assert conn.encoding == "json"
            assert conn.query(SQL).rows == reference

    def test_server_can_pin_the_json_floor(self, table_csv):
        path, schema = table_csv
        config = PostgresRawConfig(server_port=0, wire_encoding="json")
        with PostgresRawService(config) as service:
            service.register_csv("t", path, schema)
            reference = service.query(SQL).rows
            with RawServer(service) as server:
                with wire_connect(server) as conn:
                    assert conn.encoding == "json"  # despite offering binary
                    assert conn.query(SQL).rows == reference

    def test_json_and_binary_return_identical_rows(self, served, mixed_csv):
        service, server = served
        path, schema = mixed_csv
        service.register_csv("m", path, schema)
        sql = "SELECT id, price, label, day, flag, qty FROM m"
        with wire_connect(server) as binary_conn:
            binary_rows = binary_conn.query(sql).rows
        with wire_connect(server, encodings=("json",)) as json_conn:
            json_rows = json_conn.query(sql).rows
        assert binary_rows == json_rows == service.query(sql).rows


class TestV1Compatibility:
    """The regression gate: a v1 peer (JSON, single stream) completes
    a query against a v2 server, byte-level frames hand-rolled."""

    def test_v1_client_completes_a_query(self, served):
        service, server = served
        reference = [list(row) for row in service.query(SQL).rows]
        raw = _RawWireClient(server.port)
        try:
            raw.send(_RawWireClient.HELLO, {"version": 1})
            ftype, welcome = raw.read()
            assert ftype == 0x02  # WELCOME
            assert welcome["version"] == 1
            # v2 negotiation fields are not leaked into a v1 WELCOME.
            assert "encoding" not in welcome and "max_streams" not in welcome
            raw.send(_RawWireClient.QUERY, {"qid": 1, "sql": SQL})
            ftype, rowset = raw.read()
            assert ftype == 0x04 and rowset["qid"] == 1  # ROWSET
            rows: list = []
            while True:
                ftype, payload = raw.read()
                if ftype == 0x06:  # END
                    assert payload["rows"] == len(rows)
                    break
                assert ftype == 0x05, f"v1 peer got frame 0x{ftype:02x}"
                rows.extend(payload["rows"])  # ROWS: always JSON for v1
            assert rows == reference
            raw.send(_RawWireClient.GOODBYE, {})
        finally:
            raw.close()

    def test_v1_close_mid_stream_still_acks_with_end(self, served):
        _, server = served
        raw = _RawWireClient(server.port)
        try:
            raw.send(_RawWireClient.HELLO, {"version": 1})
            raw.read()  # WELCOME
            raw.send(
                _RawWireClient.QUERY,
                {"qid": 9, "sql": "SELECT a0 FROM t"},
            )
            ftype, _ = raw.read()
            assert ftype == 0x04
            raw.send(_RawWireClient.CLOSE, {"qid": 9})
            while True:
                ftype, payload = raw.read()
                if ftype == 0x06:
                    break  # the closed (or natural) END arrived
                assert ftype == 0x05
            raw.send(_RawWireClient.GOODBYE, {})
        finally:
            raw.close()

    def test_unsupported_version_is_refused(self, served):
        _, server = served
        raw = _RawWireClient(server.port)
        try:
            raw.send(_RawWireClient.HELLO, {"version": 0})
            ftype, payload = raw.read()
            assert ftype == 0x07 and payload["code"] == "protocol"
            assert "version mismatch" in payload["message"]
        finally:
            raw.close()


class TestConnectionPool:
    def test_pool_queries_match_and_reuse_connections(self, served):
        service, server = served
        reference = service.query(SQL).rows
        with ConnectionPool(port=server.port, min_size=1, max_size=2) as pool:
            for _ in range(5):
                assert pool.query(SQL).rows == reference
            stats = pool.stats()
            assert stats["opened"] == 1  # every query reused the first
            assert stats["reused"] >= 4
            assert stats["idle"] == 1 and stats["in_use"] == 0

    def test_acquire_is_bounded_and_returns_connections(self, served):
        _, server = served
        with ConnectionPool(port=server.port, min_size=0, max_size=2) as pool:
            with pool.acquire() as a, pool.acquire() as b:
                assert a is not b
                assert pool.stats()["in_use"] == 2
                with pytest.raises(ServiceError, match="exhausted"):
                    pool.checkout(timeout=0.05)
            assert pool.stats()["in_use"] == 0
            # Released connections are handed out again.
            with pool.acquire() as again:
                assert again in (a, b)

    def test_stale_idle_connection_is_replaced_at_checkout(self, served):
        service, server = served
        reference = service.query(SQL).rows
        with ConnectionPool(port=server.port, min_size=1, max_size=2) as pool:
            with pool.acquire() as conn:
                pass
            conn._sock.shutdown(socket.SHUT_RDWR)  # simulate a dead peer
            assert pool.query(SQL).rows == reference
            stats = pool.stats()
            assert stats["stale_discarded"] == 1
            assert stats["opened"] == 2

    def test_connection_dying_in_use_is_retried_once(self, served):
        service, server = served
        reference = service.query(SQL).rows
        with ConnectionPool(port=server.port, min_size=1, max_size=2) as pool:
            with pool.acquire() as conn:
                pass
            # Kill the socket *behind* a health probe forced to pass:
            # the stale connection reaches query(), fails, and the
            # pool's retry-once path completes on a fresh connection.
            bound = conn.is_healthy
            conn.is_healthy = lambda: (
                setattr(conn, "is_healthy", bound) or True
            )
            conn._sock.shutdown(socket.SHUT_RDWR)
            assert pool.query(SQL).rows == reference
            assert pool.stats()["opened"] == 2

    def test_closed_pool_refuses_checkout(self, served):
        _, server = served
        pool = ConnectionPool(port=server.port, min_size=1, max_size=1)
        pool.close()
        with pytest.raises(ServiceError, match="closed"):
            pool.checkout()


class TestWireErrors:
    def test_planning_error_round_trips(self, served):
        _, server = served
        with wire_connect(server) as conn:
            with pytest.raises(PlanningError, match="nope"):
                conn.query("SELECT nope FROM t")
            # The connection survives a failed query.
            assert conn.query("SELECT COUNT(*) AS n FROM t").scalar() == 4000

    def test_catalog_error_round_trips(self, served):
        _, server = served
        with wire_connect(server) as conn:
            with pytest.raises(CatalogError):
                conn.query("SELECT a0 FROM missing_table")

    def test_sql_syntax_error_round_trips(self, served):
        from repro.errors import SQLSyntaxError

        _, server = served
        with wire_connect(server) as conn:
            with pytest.raises(SQLSyntaxError):
                conn.query("SELEKT a0 FROM t")

    def test_unexpected_pump_error_still_sends_terminal_frame(
        self, served, monkeypatch
    ):
        # A codec/encoder bug inside the stream pump (past the batch
        # pull) must still terminate the stream with an ERROR frame —
        # not silently drop it and leave the client waiting forever.
        import repro.server.server as server_mod

        from repro.errors import ReproError

        def exploding_encoder(*args, **kwargs):
            raise RuntimeError("encoder exploded")
            yield  # pragma: no cover - generator shape only

        monkeypatch.setattr(
            server_mod, "iter_binary_row_frames", exploding_encoder
        )
        service, server = served
        with wire_connect(server) as conn:
            cursor = conn.cursor("SELECT a0 FROM t")
            with pytest.raises(ReproError, match="encoder exploded"):
                cursor.fetchall()
        assert service.cursor_stats()["open"] == 0

    def test_auth_token_stub(self, table_csv):
        path, schema = table_csv
        config = PostgresRawConfig(server_port=0)
        with PostgresRawService(config) as service:
            service.register_csv("t", path, schema)
            server = RawServer(service, auth_token="sesame").start()
            try:
                with pytest.raises(ProtocolError, match="auth token"):
                    wire_connect(server)
                with pytest.raises(ProtocolError, match="auth token"):
                    wire_connect(server, token="wrong")
                with wire_connect(server, token="sesame") as conn:
                    assert conn.session_id is not None
            finally:
                server.stop()

    def test_max_connections_turns_extras_away(self, table_csv):
        path, schema = table_csv
        config = PostgresRawConfig(server_port=0)
        with PostgresRawService(config) as service:
            service.register_csv("t", path, schema)
            server = RawServer(service, max_connections=2).start()
            try:
                first = wire_connect(server)
                second = wire_connect(server)
                with pytest.raises(ServiceError, match="max_connections"):
                    wire_connect(server)
                first.close()
                second.close()
            finally:
                server.stop()
            assert server.connection_stats()["rejected"] == 1


class TestWireStress:
    """The ISSUE's stress variant: many socket clients, one shared
    adaptive state, row-for-row identity under concurrency."""

    N_CLIENTS = 6
    ROUNDS = 3

    def test_concurrent_socket_clients_share_one_service(self, served):
        service, server = served
        reference = {sql: service.query(sql).rows for sql in QUERIES}
        start = threading.Barrier(self.N_CLIENTS + 1, timeout=60)
        failures: list[str] = []

        def client(idx: int) -> None:
            try:
                with wire_connect(server) as conn:
                    start.wait()
                    for round_no in range(self.ROUNDS):
                        for sql in QUERIES:
                            got = conn.query(sql).rows
                            if got != reference[sql]:
                                failures.append(
                                    f"client {idx} round {round_no}: "
                                    f"rows diverged for {sql!r}"
                                )
                        # Every other round, abandon a stream mid-way so
                        # CLOSE frames interleave with full streams.
                        if round_no % 2 == 0:
                            cursor = conn.cursor("SELECT a0 FROM t")
                            cursor.fetchone()
                            cursor.close()
            except Exception as exc:  # pragma: no cover - failure path
                failures.append(f"client {idx}: {exc!r}")

        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(self.N_CLIENTS)
        ]
        for t in threads:
            t.start()
        start.wait()
        for t in threads:
            t.join(timeout=120)
        assert failures == []
        # Accounting balances: every admitted query completed, every
        # cursor retired, no connection left open.
        stats = service.scheduler.stats()
        assert stats["active"] == 0 and stats["waiting"] == 0
        assert stats["admitted"] == stats["completed"]
        assert service.cursor_stats()["open"] == 0
        server_stats = server.connection_stats()
        assert server_stats["queries"] == self.N_CLIENTS * (
            self.ROUNDS * len(QUERIES) + 2  # + the abandoned streams
        )
