"""End-to-end streaming: cursors from the chunk merge to the session.

Covers the lock-lifetime contract (shared/exclusive locks held while the
cursor is open, released on exhaustion/close/TTL), identity between the
streamed and materialized paths, time-to-first-batch accounting, and the
drop/refresh-vs-open-cursor races."""

from __future__ import annotations

import threading
import time

import pytest

from repro import (
    PostgresRaw,
    PostgresRawConfig,
    PostgresRawService,
    generate_csv,
    uniform_table_spec,
)
from repro.errors import (
    CatalogError,
    CursorInvalidError,
    CursorTimeoutError,
)

SQL = "SELECT a0, a1 FROM t WHERE a2 < 500000"


@pytest.fixture
def own_csv(tmp_path):
    """A per-test raw file (mutable, unlike the session-scoped fixtures)."""
    path = tmp_path / "own.csv"
    spec = uniform_table_spec(n_attrs=6, n_rows=4_000, seed=77)
    schema = generate_csv(path, spec)
    return path, schema


def streaming_config(**overrides):
    base = dict(batch_size=64, stream_queue_batches=2)
    base.update(overrides)
    return PostgresRawConfig(**base)


class TestStreamedEqualsMaterialized:
    @pytest.mark.parametrize(
        "config",
        [
            PostgresRawConfig(batch_size=128),
            PostgresRawConfig(
                batch_size=128,
                scan_workers=4,
                parallel_chunk_bytes=16 * 1024,
            ),
        ],
        ids=["serial", "parallel_threads"],
    )
    def test_cursor_rows_match_query_rows(self, small_csv, config):
        path, schema = small_csv
        with PostgresRaw(PostgresRawConfig()) as reference_engine:
            reference_engine.register_csv("t", path, schema)
            reference = reference_engine.query(SQL).rows
        with PostgresRaw(config) as engine:
            engine.register_csv("t", path, schema)
            streamed = list(engine.query_stream(SQL))  # cold
            materialized = engine.query(SQL).rows      # warm
        assert streamed == reference
        assert materialized == reference

    def test_fetchmany_odd_sizes_equal_fetchall(self, small_csv):
        path, schema = small_csv
        with PostgresRaw(streaming_config()) as engine:
            engine.register_csv("t", path, schema)
            expected = engine.query(SQL).rows
            cursor = engine.query_stream(SQL)
            out = []
            while True:
                got = cursor.fetchmany(37)
                out.extend(got)
                if len(got) < 37:
                    break
            assert out == expected

    def test_aggregates_and_count_star_stream(self, small_csv):
        path, schema = small_csv
        with PostgresRaw(streaming_config()) as engine:
            engine.register_csv("t", path, schema)
            assert engine.query_stream(
                "SELECT COUNT(*) AS n FROM t"
            ).fetchall().scalar() == 5_000
            total = engine.query("SELECT SUM(a1) AS s FROM t").scalar()
            assert engine.query_stream(
                "SELECT SUM(a1) AS s FROM t"
            ).fetchall().scalar() == total


class TestTimeToFirstBatch:
    def test_ttfb_recorded_and_below_total(self, small_csv):
        path, schema = small_csv
        with PostgresRaw(streaming_config()) as engine:
            engine.register_csv("t", path, schema)
            cursor = engine.query_stream(SQL)
            first = cursor.fetchone()
            assert first is not None
            ttfb = cursor.metrics.time_to_first_batch
            assert ttfb is not None and ttfb > 0
            cursor.fetchall()
            assert cursor.metrics.total_seconds >= ttfb

    def test_service_aggregates_ttfb_and_open_counts(self, small_csv):
        path, schema = small_csv
        with PostgresRawService(streaming_config()) as service:
            service.register_csv("t", path, schema)
            session = service.session()
            cursor = session.cursor(SQL)
            assert service.cursor_stats()["open"] == 1
            cursor.fetchone()
            cursor.close()
            stats = service.cursor_stats()
            assert stats["open"] == 0
            assert stats["opened"] == 1 and stats["finished"] == 1
            assert stats["avg_ttfb_s"] is not None
            # The concurrency panel surfaces both.
            from repro.monitor import render_concurrency_panel

            text = render_concurrency_panel(service)
            assert "cursors:" in text and "time-to-first-batch" in text


class TestLockLifetime:
    def test_open_cursor_holds_lock_until_closed(self, small_csv):
        path, schema = small_csv
        with PostgresRawService(streaming_config()) as service:
            service.register_csv("t", path, schema)
            session = service.session()
            cursor = session.cursor(SQL)  # cold scan: exclusive path
            assert cursor.fetchone() is not None
            lock = service.table_lock("t")
            acquired = threading.Event()

            def writer():
                lock.acquire_write()
                acquired.set()
                lock.release_write()

            t = threading.Thread(target=writer)
            t.start()
            # The producing scan still holds the lock: the writer waits.
            assert not acquired.wait(timeout=0.3)
            cursor.close()
            assert acquired.wait(timeout=5)
            t.join(timeout=5)
            # And the table is fully usable afterwards.
            assert len(session.query(SQL)) == len(
                session.cursor(SQL).fetchall()
            )

    def test_close_before_first_fetch_releases_locks(self, small_csv):
        """A cursor closed without ever being iterated must still stop
        the producer and free its locks (regression: closing a
        never-started generator skips its finally)."""
        path, schema = small_csv
        with PostgresRawService(streaming_config()) as service:
            service.register_csv("t", path, schema)
            session = service.session()
            cursor = session.cursor(SQL)  # producer blocks on the queue
            time.sleep(0.05)
            cursor.close()
            assert service.cursor_stats()["open"] == 0
            lock = service.table_lock("t")
            acquired = threading.Event()

            def writer():
                lock.acquire_write()
                acquired.set()
                lock.release_write()

            t = threading.Thread(target=writer)
            t.start()
            assert acquired.wait(timeout=5)
            t.join(timeout=5)

    def test_early_close_still_teaches_the_engine(self, small_csv):
        path, schema = small_csv
        with PostgresRawService(streaming_config()) as service:
            service.register_csv("t", path, schema)
            session = service.session()
            cursor = session.cursor(SQL)
            cursor.fetchmany(100)  # a couple of batches, then hang up
            cursor.close()
            state = service.table_state("t")
            # The abandoned scan installed the row prefix it completed.
            assert state.positional_map.n_rows == 5_000
            assert any(
                c.rows > 0 for c in state.positional_map.chunks()
            )
            assert session.query(SQL).rows  # engine fully consistent

    def test_stalled_consumer_abandoned_after_ttl(self, small_csv):
        path, schema = small_csv
        config = streaming_config(cursor_ttl_s=0.15, stream_queue_batches=1)
        with PostgresRawService(config) as service:
            service.register_csv("t", path, schema)
            session = service.session()
            cursor = session.cursor(SQL)
            assert cursor.fetchone() is not None
            time.sleep(0.6)  # stall well past the TTL; producer gives up
            with pytest.raises(CursorTimeoutError):
                while cursor.fetchmany(64):
                    pass
            stats = service.cursor_stats()
            assert stats["abandoned"] == 1
            # Locks were released: the next query runs and is complete.
            assert len(session.query(SQL)) == len(
                PostgresRaw_reference(path, schema)
            )


def PostgresRaw_reference(path, schema):
    with PostgresRaw() as engine:
        engine.register_csv("t", path, schema)
        return engine.query(SQL).rows


class TestDropAndRefreshRaces:
    def test_drop_table_vs_open_cursor_is_always_clean(self, own_csv):
        path, schema = own_csv
        expected = None
        for _ in range(10):
            with PostgresRawService(streaming_config()) as service:
                service.register_csv("t", path, schema)
                session = service.session()
                if expected is None:
                    expected = session.query(SQL).rows
                else:
                    session.query(SQL)  # warm: cursor takes the read path
                cursor = session.cursor(SQL)
                dropped = threading.Event()

                def dropper():
                    try:
                        service.drop_table("t")
                    except CatalogError:
                        pass
                    dropped.set()

                t = threading.Thread(target=dropper)
                t.start()
                try:
                    rows = list(cursor)
                except (CursorInvalidError, CatalogError):
                    rows = None  # clean failure: acceptable outcome
                finally:
                    cursor.close()
                t.join(timeout=10)
                assert dropped.is_set()
                if rows is not None:
                    # Never partial, never another table's state: the
                    # winning cursor serves the complete, correct result.
                    assert rows == expected

    def test_refresh_rewrite_waits_for_open_cursor(self, own_csv, tmp_path):
        path, schema = own_csv
        with PostgresRawService(streaming_config()) as service:
            service.register_csv("t", path, schema)
            session = service.session()
            expected_old = session.query(SQL).rows
            cursor = session.cursor(SQL)
            rows = [cursor.fetchone()]
            assert rows[0] is not None

            refreshed = threading.Event()

            def rewriter():
                # Rewrite the raw file, then force reconciliation: the
                # write lock makes this wait for the open cursor.
                spec = uniform_table_spec(n_attrs=6, n_rows=1_000, seed=5)
                generate_csv(path, spec)
                service.refresh("t")
                refreshed.set()

            t = threading.Thread(target=rewriter)
            t.start()
            rows.extend(cursor)  # drain: producer holds the shared lock
            t.join(timeout=30)
            assert refreshed.is_set()
            # The open cursor saw a consistent snapshot of the old file.
            assert [r for r in rows if r is not None] == expected_old
            # After the rewrite reconciled, new queries see the new file.
            state = service.table_state("t")
            assert state.positional_map.n_rows in (0, 1_000)
            rows = session.query("SELECT a0 FROM t WHERE a0 >= 0")
            assert len(rows) == 1_000

    def test_generation_guard_rejects_dropped_and_rewritten_tables(
        self, own_csv
    ):
        path, schema = own_csv
        with PostgresRawService(streaming_config()) as service:
            service.register_csv("t", path, schema)
            state = service.table_state("t")
            lock = service.table_lock("t")
            tables = [("t", state, lock)]
            # Rewritten: generation moved on since the cursor was planned.
            with pytest.raises(CursorInvalidError):
                service._check_generations(
                    tables, {"t": state.generation - 1}
                )
            # Dropped: the registered state is no longer this one.
            service.drop_table("t")
            with pytest.raises(CursorInvalidError):
                service._check_generations(tables, {"t": state.generation})

    def test_service_close_force_closes_open_cursors(self, own_csv):
        path, schema = own_csv
        service = PostgresRawService(streaming_config())
        service.register_csv("t", path, schema)
        session = service.session()
        cursor = session.cursor(SQL)
        assert cursor.fetchone() is not None
        service.close()
        with pytest.raises(CursorInvalidError):
            while cursor.fetchmany(64):
                pass
        assert service.cursor_stats()["open"] == 0
