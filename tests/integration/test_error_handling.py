"""Failure injection: malformed raw data, schema drift, edge-shaped files.

In-situ engines meet dirty data with no loading step to catch it first;
errors must surface lazily, precisely (row numbers), and without
corrupting the adaptive state.
"""

import pytest

from repro import (
    Column,
    DataType,
    PostgresRaw,
    TableSchema,
    write_csv,
)
from repro.errors import ConversionError, RawDataError

TWO_INTS = TableSchema(
    [Column("a", DataType.INTEGER), Column("b", DataType.INTEGER)]
)


class TestMalformedRows:
    def test_too_few_fields_reports_row(self, tmp_path):
        path = tmp_path / "short.csv"
        path.write_text("a,b\n1,2\n3\n5,6\n")
        eng = PostgresRaw()
        eng.register_csv("t", path, TWO_INTS)
        with pytest.raises(RawDataError):
            eng.query("SELECT b FROM t")

    def test_too_many_fields_detected_on_full_tokenize(self, tmp_path):
        path = tmp_path / "long.csv"
        path.write_text("a,b\n1,2,3\n")
        eng = PostgresRaw()
        eng.register_csv("t", path, TWO_INTS)
        with pytest.raises(RawDataError):
            eng.query("SELECT a, b FROM t")

    def test_bad_value_reports_absolute_row(self, tmp_path):
        path = tmp_path / "badval.csv"
        path.write_text("a,b\n1,2\n3,4\nx,6\n")
        eng = PostgresRaw()
        eng.register_csv("t", path, TWO_INTS)
        with pytest.raises(ConversionError) as exc:
            eng.query("SELECT a FROM t")
        assert exc.value.row == 2

    def test_error_does_not_poison_engine(self, tmp_path):
        """A failed query must not leave broken adaptive state behind."""
        path = tmp_path / "poison.csv"
        path.write_text("a,b\n1,2\n3,oops\n")
        eng = PostgresRaw()
        eng.register_csv("t", path, TWO_INTS)
        with pytest.raises(ConversionError):
            eng.query("SELECT b FROM t")
        # Column a is clean and must stay queryable, repeatedly.
        assert eng.query("SELECT SUM(a) AS s FROM t").scalar() == 4
        assert eng.query("SELECT SUM(a) AS s FROM t").scalar() == 4

    def test_clean_prefix_remains_usable_with_limit(self, tmp_path):
        from repro import PostgresRawConfig

        path = tmp_path / "tail_bad.csv"
        body = "\n".join(f"{i},{i * 2}" for i in range(100))
        path.write_text("a,b\n" + body + "\nbroken_row_no_comma\n")
        # Small batches so a LIMIT in the clean prefix never reaches the
        # broken tail (scans tokenize batch-at-a-time).
        eng = PostgresRaw(PostgresRawConfig(batch_size=32))
        eng.register_csv("t", path, TWO_INTS)
        # A LIMIT inside the clean prefix never touches the broken tail.
        result = eng.query("SELECT a FROM t LIMIT 5")
        assert result.column("a") == [0, 1, 2, 3, 4]
        with pytest.raises(RawDataError):
            eng.query("SELECT COUNT(b) AS n FROM t")


class TestEdgeShapedFiles:
    def test_empty_data_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("a,b\n")  # header only
        eng = PostgresRaw()
        eng.register_csv("t", path, TWO_INTS)
        assert eng.query("SELECT COUNT(*) AS n FROM t").scalar() == 0
        assert len(eng.query("SELECT a FROM t")) == 0
        assert len(eng.query("SELECT a FROM t WHERE b > 0")) == 0

    def test_single_row_single_column(self, tmp_path):
        schema = TableSchema([Column("only", DataType.INTEGER)])
        path = tmp_path / "one.csv"
        write_csv(path, [(7,)], schema)
        eng = PostgresRaw()
        eng.register_csv("t", path, schema)
        assert eng.query("SELECT only FROM t").scalar() == 7
        # Warm path too.
        assert eng.query("SELECT only FROM t").scalar() == 7

    def test_wide_table(self, tmp_path):
        n = 64
        schema = TableSchema(
            [Column(f"c{i}", DataType.INTEGER) for i in range(n)]
        )
        rows = [tuple(range(r, r + n)) for r in range(10)]
        path = tmp_path / "wide.csv"
        write_csv(path, rows, schema)
        eng = PostgresRaw()
        eng.register_csv("t", path, schema)
        assert eng.query("SELECT c63 FROM t WHERE c0 = 0").scalar() == 63
        # Anchored follow-up in the middle of the tuple.
        assert eng.query("SELECT c32 FROM t WHERE c0 = 3").scalar() == 35

    def test_all_null_column(self, tmp_path):
        path = tmp_path / "nulls.csv"
        path.write_text("a,b\n" + "\n".join(f"{i}," for i in range(10)) + "\n")
        eng = PostgresRaw()
        eng.register_csv("t", path, TWO_INTS)
        assert eng.query("SELECT COUNT(b) AS n FROM t").scalar() == 0
        assert eng.query("SELECT SUM(b) AS s FROM t").scalar() is None
        assert (
            eng.query("SELECT COUNT(*) AS n FROM t WHERE b IS NULL").scalar()
            == 10
        )

    def test_duplicate_registration_rejected(self, tmp_path):
        path = tmp_path / "d.csv"
        write_csv(path, [(1, 2)], TWO_INTS)
        eng = PostgresRaw()
        eng.register_csv("t", path, TWO_INTS)
        from repro.errors import CatalogError

        with pytest.raises(CatalogError):
            eng.register_csv("t", path, TWO_INTS)
        eng.drop_table("t")
        eng.register_csv("t", path, TWO_INTS)  # re-register after drop
        assert eng.query("SELECT a FROM t").scalar() == 1
