"""Vertical persistence: hot columns promoted into the columnstore.

With ``vp_enabled=True`` a repeated workload crosses the
``vp_min_accesses`` threshold and the governor admits promoted columns
as a durable "columnstore" tier; later scans of a promoted column are
served without touching the raw file, appends/rewrites/drops invalidate
the store, and with the default ``vp_enabled=False`` nothing changes.
"""

import pytest

from repro import (
    Column,
    DataType,
    PostgresRaw,
    PostgresRawConfig,
    TableSchema,
    append_csv_rows,
    write_csv,
)
from repro.monitor.governor import render_governor_panel

SCHEMA = TableSchema(
    [
        Column("a", DataType.INTEGER),
        Column("b", DataType.INTEGER),
        Column("c", DataType.TEXT),
    ]
)

ROWS = [(i, i * 2, f"r{i}") for i in range(400)]

SQL = "SELECT a FROM t WHERE a >= 0"


def _vp_config(tmp_path, **kw):
    return PostgresRawConfig(
        memory_budget=50_000_000,
        vp_enabled=True,
        vp_min_accesses=2,
        vp_dir=str(tmp_path / "vp"),
        **kw,
    )


def _make_engine(tmp_path, config):
    path = tmp_path / "t.csv"
    write_csv(path, ROWS, SCHEMA)
    eng = PostgresRaw(config)
    eng.register_csv("t", path, SCHEMA)
    return eng


def _counter(eng, name):
    return eng.telemetry.registry.counter(name).value


def test_repeated_workload_promotes_and_serves(tmp_path, monkeypatch):
    eng = _make_engine(tmp_path, _vp_config(tmp_path))
    try:
        expected = [(r[0],) for r in ROWS]
        for _ in range(3):
            assert list(eng.query(SQL)) == expected
        assert _counter(eng, "vp_promotions_total") >= 1

        # Drop the binary cache (keep the positional map so the line
        # bounds survive): the next scan must come from the columnstore
        # without re-reading the raw file.  Prove the raw file is never
        # opened by making the raw reader explode.
        state = eng.table_state("t")
        state.cache.invalidate()

        import repro.core.raw_scan as raw_scan_mod

        def _no_raw_reads(*args, **kwargs):
            raise AssertionError("raw file was read on a VP-served scan")

        monkeypatch.setattr(raw_scan_mod, "RawFileReader", _no_raw_reads)
        served_before = _counter(eng, "vp_served_total")
        result = eng.query(SQL)
        assert list(result) == expected
        assert _counter(eng, "vp_served_total") > served_before
        # No tokenizing or parsing either: the column arrives binary.
        assert result.metrics.tokenizing_seconds == 0.0
        assert result.metrics.parsing_seconds == 0.0
    finally:
        eng.close()


def test_explain_annotates_vp_serving(tmp_path):
    eng = _make_engine(tmp_path, _vp_config(tmp_path))
    try:
        assert "vp: served from columnstore" not in eng.explain(SQL)
        for _ in range(3):
            eng.query(SQL)
        assert "-- vp: served from columnstore" in eng.explain(SQL)
        # A projection including an unpromoted column is not annotated.
        assert "vp: served from columnstore" not in eng.explain(
            "SELECT a, c FROM t WHERE a >= 0"
        )
    finally:
        eng.close()


def test_residency_rows_and_accounting_balance(tmp_path):
    eng = _make_engine(tmp_path, _vp_config(tmp_path))
    try:
        for _ in range(3):
            eng.query(SQL)
        governor = eng.service.governor
        rows = governor.residency()
        kinds = {row["kind"] for row in rows}
        assert "columnstore" in kinds
        assert all("format" in row for row in rows)
        cs_rows = [r for r in rows if r["kind"] == "columnstore"]
        assert cs_rows[0]["format"] == "csv"
        assert cs_rows[0]["nbytes"] > 0
        # Governed byte accounting balances across all tiers.
        assert governor.used_bytes == sum(r["nbytes"] for r in rows)
    finally:
        eng.close()


def test_monitor_panel_shows_format_and_columnstore(tmp_path):
    eng = _make_engine(tmp_path, _vp_config(tmp_path))
    try:
        for _ in range(3):
            eng.query(SQL)
        panel = render_governor_panel(eng.service)
        assert "columnstore" in panel
        assert "csv" in panel
    finally:
        eng.close()


def test_append_invalidates_promoted_columns(tmp_path):
    eng = _make_engine(tmp_path, _vp_config(tmp_path))
    try:
        for _ in range(3):
            eng.query(SQL)
        assert _counter(eng, "vp_promotions_total") >= 1
        promos_before = _counter(eng, "vp_promotions_total")
        append_csv_rows(tmp_path / "t.csv", [(1000, 2000, "x")], SCHEMA)
        eng.refresh()
        assert _counter(eng, "vp_invalidations_total") >= 1
        # The stale promotion is gone until a scan rebuilds it.
        assert "vp: served from columnstore" not in eng.explain(SQL)
        # Stale columnstore data must not leak into answers.
        got = list(eng.query(SQL))
        assert len(got) == len(ROWS) + 1
        assert got[-1] == (1000,)
        # The still-hot column re-promotes over the appended rows.
        assert _counter(eng, "vp_promotions_total") > promos_before
    finally:
        eng.close()


def test_rewrite_invalidates_promoted_columns(tmp_path):
    eng = _make_engine(tmp_path, _vp_config(tmp_path))
    try:
        for _ in range(3):
            eng.query(SQL)
        assert _counter(eng, "vp_promotions_total") >= 1
        write_csv(tmp_path / "t.csv", ROWS[:10], SCHEMA)
        eng.refresh()
        assert _counter(eng, "vp_invalidations_total") >= 1
        assert list(eng.query(SQL)) == [(r[0],) for r in ROWS[:10]]
    finally:
        eng.close()


def test_drop_table_releases_columnstore_bytes(tmp_path):
    eng = _make_engine(tmp_path, _vp_config(tmp_path))
    try:
        for _ in range(3):
            eng.query(SQL)
        governor = eng.service.governor
        assert governor.used_bytes > 0
        eng.drop_table("t")
        assert governor.used_bytes == 0
        assert governor.residency() == []
    finally:
        eng.close()


def test_vp_disabled_by_default(tmp_path):
    path = tmp_path / "t.csv"
    write_csv(path, ROWS, SCHEMA)
    eng = PostgresRaw(PostgresRawConfig(memory_budget=50_000_000))
    try:
        eng.register_csv("t", path, SCHEMA)
        for _ in range(4):
            assert len(list(eng.query(SQL))) == len(ROWS)
        assert _counter(eng, "vp_promotions_total") == 0
        assert eng.service._vertical == {}
        kinds = {r["kind"] for r in eng.service.governor.residency()}
        assert "columnstore" not in kinds
        assert "vp: served from columnstore" not in eng.explain(SQL)
    finally:
        eng.close()


def test_vp_min_accesses_validated():
    from repro.errors import BudgetError

    with pytest.raises(BudgetError):
        PostgresRawConfig(vp_min_accesses=0)


def test_vp_respects_governor_budget(tmp_path):
    # A budget too small for any promotion: the engine still answers,
    # promotions are denied, and accounting stays balanced.
    config = PostgresRawConfig(
        memory_budget=2048,
        vp_enabled=True,
        vp_min_accesses=2,
        vp_dir=str(tmp_path / "vp"),
    )
    eng = _make_engine(tmp_path, config)
    try:
        expected = [(r[0],) for r in ROWS]
        for _ in range(4):
            assert list(eng.query(SQL)) == expected
        governor = eng.service.governor
        assert governor.used_bytes <= 2048
        assert governor.used_bytes == sum(
            r["nbytes"] for r in governor.residency()
        )
    finally:
        eng.close()
