"""Cross-engine oracle tests.

PostgresRaw, the Baseline (external files), and every conventional
profile share one SQL semantics; on identical data they must return
identical results for any query.  This is the strongest correctness
check in the suite — the engines share the planner/executor but differ
completely in how the leaves obtain data (in-situ adaptive scan vs
binary storage vs full re-scan).
"""

import pytest

from repro import DataType, PostgresRaw, PostgresRawConfig, generate_csv
from repro.baselines import (
    ConventionalDBMS,
    DBMS_X,
    ExternalFilesDBMS,
    MYSQL,
    POSTGRESQL,
)
from repro.rawio.generator import ColumnSpec, DatasetSpec

QUERIES = [
    "SELECT id, price FROM t WHERE qty < 50 ORDER BY id LIMIT 20",
    "SELECT COUNT(*) AS n FROM t",
    "SELECT COUNT(qty) AS n FROM t",
    "SELECT SUM(qty) AS s, AVG(price) AS m FROM t WHERE flag = TRUE",
    "SELECT label, COUNT(*) AS c, MIN(price) AS lo FROM t "
    "GROUP BY label ORDER BY c DESC, label LIMIT 10",
    "SELECT id FROM t WHERE label LIKE 'a%' ORDER BY id LIMIT 15",
    "SELECT id FROM t WHERE qty IS NULL ORDER BY id LIMIT 10",
    "SELECT id, price * 2 AS dbl FROM t "
    "WHERE price BETWEEN 100 AND 200 ORDER BY dbl DESC LIMIT 10",
    "SELECT DISTINCT flag FROM t ORDER BY flag",
    "SELECT id FROM t WHERE day >= '2011-01-01' AND qty IN (1, 2, 3) "
    "ORDER BY id LIMIT 10",
    "SELECT flag, label, COUNT(*) AS n FROM t GROUP BY flag, label "
    "HAVING COUNT(*) > 5 ORDER BY n DESC, label LIMIT 8",
]


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    path = tmp_path_factory.mktemp("oracle") / "t.csv"
    spec = DatasetSpec(
        columns=(
            ColumnSpec("id", DataType.INTEGER, distribution="sequential"),
            ColumnSpec("price", DataType.FLOAT, low=0, high=500),
            ColumnSpec("label", DataType.TEXT, width=5, cardinality=30),
            ColumnSpec("day", DataType.DATE, low=14_600, high=15_700),
            ColumnSpec("flag", DataType.BOOLEAN),
            ColumnSpec(
                "qty", DataType.INTEGER, low=0, high=100, null_fraction=0.08
            ),
        ),
        n_rows=4_000,
        seed=77,
    )
    schema = generate_csv(path, spec)
    return path, schema


@pytest.fixture(scope="module")
def reference_results(dataset):
    path, schema = dataset
    eng = PostgresRaw(PostgresRawConfig.baseline())
    eng.register_csv("t", path, schema)
    return [list(eng.query(q)) for q in QUERIES]


class TestPostgresRawAgainstBaseline:
    def test_cold_engine_matches(self, dataset, reference_results):
        path, schema = dataset
        eng = PostgresRaw()
        eng.register_csv("t", path, schema)
        for query, expected in zip(QUERIES, reference_results):
            assert list(eng.query(query)) == expected, query

    def test_warm_engine_matches(self, dataset, reference_results):
        path, schema = dataset
        eng = PostgresRaw()
        eng.register_csv("t", path, schema)
        # Warm every structure with one pass, then verify all again.
        for query in QUERIES:
            eng.query(query)
        for query, expected in zip(QUERIES, reference_results):
            assert list(eng.query(query)) == expected, query

    def test_tight_budget_engine_matches(self, dataset, reference_results):
        path, schema = dataset
        config = PostgresRawConfig(
            positional_map_budget=64 * 1024,  # forces chunk eviction
            cache_budget=64 * 1024,  # forces cache eviction
            batch_size=512,
        )
        eng = PostgresRaw(config)
        eng.register_csv("t", path, schema)
        for repeat in range(2):
            for query, expected in zip(QUERIES, reference_results):
                assert list(eng.query(query)) == expected, query


@pytest.mark.parametrize(
    "profile", [POSTGRESQL, MYSQL, DBMS_X], ids=lambda p: p.name
)
class TestConventionalAgainstBaseline:
    def test_profile_matches(
        self, dataset, reference_results, profile, tmp_path
    ):
        path, schema = dataset
        db = ConventionalDBMS(profile, storage_dir=tmp_path)
        db.load_csv("t", path, schema)
        for query, expected in zip(QUERIES, reference_results):
            assert list(db.query(query)) == expected, query

    def test_profile_with_index_matches(
        self, dataset, reference_results, profile, tmp_path
    ):
        path, schema = dataset
        db = ConventionalDBMS(profile, storage_dir=tmp_path / "idx")
        db.load_csv("t", path, schema)
        db.create_index("t", "qty")
        db.create_index("t", "price")
        for query, expected in zip(QUERIES, reference_results):
            assert list(db.query(query)) == expected, query


class TestExternalFiles:
    def test_every_query_identical_cost_profile(self, dataset):
        """The external baseline must not get faster over repeats (it
        remembers nothing) and must stay correct."""
        path, schema = dataset
        ext = ExternalFilesDBMS()
        ext.register_csv("t", path, schema)
        first = ext.query(QUERIES[0])
        second = ext.query(QUERIES[0])
        assert list(first) == list(second)
        # No adaptive structure exists, so tokenizing never disappears.
        assert second.metrics.fields_tokenized > 0
        assert second.metrics.bytes_read > 0
