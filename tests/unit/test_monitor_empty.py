"""Every monitoring panel must render on a fresh engine — no queries,
no traffic, no governor — without raising.  The panels are the first
thing an operator opens on a new deployment; a crash on empty state is
a worse bug than a wrong number."""

from __future__ import annotations

import pytest

from repro import (
    PostgresRaw,
    PostgresRawConfig,
    PostgresRawService,
    QueryMetrics,
    RawServer,
)
from repro.monitor import (
    BreakdownReport,
    SystemMonitorPanel,
    connections_report,
    governor_report,
    render_attribute_usage,
    render_breakdown,
    render_concurrency_panel,
    render_connections_panel,
    render_governor_panel,
    render_worker_breakdown,
)


@pytest.fixture
def fresh_engine(small_csv):
    path, schema = small_csv
    with PostgresRaw() as engine:
        engine.register_csv("t", path, schema)
        yield engine


def test_breakdown_panel_empty_report():
    assert render_breakdown(BreakdownReport()) == "(no data)"


def test_worker_breakdown_without_parallel_phase():
    # A serial query has no worker_breakdowns; the panel must say so.
    text = render_worker_breakdown(QueryMetrics())
    assert isinstance(text, str) and text


def test_system_panel_renders_before_any_query(fresh_engine):
    state = fresh_engine._states["t"]
    panel = SystemMonitorPanel(state)
    panel.snapshot()
    text = panel.render()
    assert "cache" in text.lower()


def test_attribute_usage_empty(fresh_engine):
    state = fresh_engine._states["t"]
    assert render_attribute_usage(state) == "(no attributes accessed yet)"


def test_governor_panel_fresh_service_without_budget():
    with PostgresRawService() as service:
        report = governor_report(service)
        assert report["stats"] is None
        assert report["residency"] == []
        text = render_governor_panel(service)
        assert "silos" in text


def test_governor_panel_fresh_service_with_budget():
    config = PostgresRawConfig(memory_budget=1 << 20)
    with PostgresRawService(config) as service:
        report = governor_report(service)
        assert report["stats"]["used_bytes"] == 0
        text = render_governor_panel(service)
        assert "global budget" in text


def test_concurrency_panel_fresh_service():
    with PostgresRawService() as service:
        text = render_concurrency_panel(service)
        assert "0 active" in text
        assert "(no batches streamed yet)" in text
        # No queries yet: the latency percentile line must be absent,
        # not rendered from an empty histogram.
        assert "query latency" not in text


def test_connections_panel_started_but_idle_server():
    with PostgresRawService() as service:
        server = RawServer(service, host="127.0.0.1", port=0)
        with server:
            report = connections_report(server)
            assert report["open"] == 0
            assert report["accepted"] == 0
            text = render_connections_panel(server)
            assert "0/"
            assert "connections" in text


def test_panels_render_from_registry_snapshot():
    # The panels and the STATS command must read the same snapshot.
    with PostgresRawService() as service:
        snap = service.telemetry.registry.snapshot()
        assert {"scheduler", "cursors", "locks", "governor", "residency",
                "traces"} <= set(snap["collectors"])


def test_shard_panel_renders_empty_and_minimal():
    from repro.monitor import render_shard_panel, shard_report

    assert shard_report({}) == []
    assert "no shards" in render_shard_panel({})
    stats = {
        "shards": [{"counters": {}}, {"counters": {"x.queries": 3}}],
        "totals": {"counters": {"x.queries": 3}},
        "client": {"routed": 1, "scattered": 2},
    }
    text = render_shard_panel(stats)
    assert "2 shards" in text
    assert "1 routed / 2 scattered" in text
    assert "shard 0" in text and "shard 1" in text
