"""The streaming building blocks in isolation: the lazy Cursor over a
batch iterator, and the bounded BatchChannel handoff between a producer
thread and a consumer."""

from __future__ import annotations

import threading
import time

import pytest

from repro import Batch, ColumnVector, Cursor, DataType
from repro.errors import (
    CursorClosedError,
    CursorInvalidError,
    CursorTimeoutError,
)
from repro.service.streaming import BatchChannel


def make_batch(start: int, n: int) -> Batch:
    return Batch(
        {
            "a": ColumnVector.from_pylist(
                DataType.INTEGER, list(range(start, start + n))
            ),
            "b": ColumnVector.from_pylist(
                DataType.INTEGER, [v * 10 for v in range(start, start + n)]
            ),
        }
    )


def make_batches(sizes: list[int]) -> list[Batch]:
    batches, start = [], 0
    for n in sizes:
        batches.append(make_batch(start, n))
        start += n
    return batches


def make_cursor(sizes: list[int], **kwargs) -> Cursor:
    return Cursor(
        ["a", "b"],
        [DataType.INTEGER, DataType.INTEGER],
        iter(make_batches(sizes)),
        **kwargs,
    )


def expected_rows(total: int) -> list[tuple]:
    return [(i, i * 10) for i in range(total)]


class TestCursor:
    def test_fetchall_matches_rows(self):
        result = make_cursor([3, 4, 1]).fetchall()
        assert result.rows == expected_rows(8)
        assert result.column_names == ["a", "b"]

    def test_fetchmany_odd_sizes_walk_batch_boundaries(self):
        cursor = make_cursor([5, 5, 5])
        out = []
        while True:
            got = cursor.fetchmany(7)
            out.extend(got)
            if len(got) < 7:
                break
        assert out == expected_rows(15)
        assert cursor.exhausted
        assert cursor.rows_fetched == 15

    def test_row_iteration_is_lazy_and_complete(self):
        cursor = make_cursor([2, 2, 2])
        assert list(cursor) == expected_rows(6)

    def test_fetchone_then_fetchall_keeps_every_row(self):
        cursor = make_cursor([4, 4])
        first = cursor.fetchone()
        rest = cursor.fetchall()
        assert [first] + rest.rows == expected_rows(8)

    def test_batches_iterator_yields_batches(self):
        cursor = make_cursor([3, 3])
        sizes = [b.num_rows for b in cursor.batches()]
        assert sizes == [3, 3]
        assert cursor.batches_fetched == 2

    def test_close_is_idempotent_and_blocks_further_fetches(self):
        cursor = make_cursor([3, 3])
        assert cursor.fetchone() == (0, 0)
        cursor.close()
        cursor.close()
        assert cursor.closed
        with pytest.raises(CursorClosedError):
            cursor.fetchone()

    def test_on_close_fires_exactly_once(self):
        calls: list[Cursor] = []
        cursor = make_cursor([2], on_close=calls.append)
        cursor.fetchall()
        cursor.close()
        assert calls == [cursor]

    def test_close_propagates_to_source_generator(self):
        closed = []

        def source():
            try:
                yield make_batch(0, 2)
                yield make_batch(2, 2)
            finally:
                closed.append(True)

        cursor = Cursor(
            ["a", "b"], [DataType.INTEGER, DataType.INTEGER], source()
        )
        cursor.fetchone()
        cursor.close()
        assert closed == [True]

    def test_source_error_finishes_cursor_and_propagates(self):
        def source():
            yield make_batch(0, 2)
            raise CursorInvalidError("gone")

        done: list[Cursor] = []
        cursor = Cursor(
            ["a", "b"],
            [DataType.INTEGER, DataType.INTEGER],
            source(),
            on_close=done.append,
        )
        assert cursor.fetchmany(2) == expected_rows(2)
        with pytest.raises(CursorInvalidError):
            cursor.fetchmany(2)
        assert done and cursor.exhausted


class TestBatchChannel:
    def test_depth_never_exceeds_capacity(self):
        channel = BatchChannel(capacity=2, ttl_s=None)
        peaks = []

        def producer():
            for batch in make_batches([1] * 10):
                channel.put(batch)
            channel.finish()

        t = threading.Thread(target=producer)
        t.start()
        got = 0
        for _ in channel.drain():
            peaks.append(channel.depth)
            got += 1
            time.sleep(0.001)  # let the producer run ahead if it could
        t.join(timeout=5)
        assert got == 10
        assert channel.peak_depth <= 2
        assert all(d <= 2 for d in peaks)

    def test_slow_consumer_times_out_then_error_follows_batches(self):
        channel = BatchChannel(capacity=1, ttl_s=0.05)
        outcome = []

        def producer():
            try:
                for batch in make_batches([1] * 5):
                    channel.put(batch)
                channel.finish()
            except CursorTimeoutError as exc:
                outcome.append("timeout")
                channel.finish(exc)

        t = threading.Thread(target=producer)
        t.start()
        t.join(timeout=5)
        assert outcome == ["timeout"]
        assert channel.timed_out
        # The batch that made it into the channel still arrives, then
        # the clean error.
        drained = channel.drain()
        assert next(drained).num_rows == 1
        with pytest.raises(CursorTimeoutError):
            next(drained)

    def test_consumer_close_unblocks_producer(self):
        channel = BatchChannel(capacity=1, ttl_s=None)
        results = []

        def producer():
            for batch in make_batches([1] * 5):
                if not channel.put(batch):
                    results.append("stopped")
                    return
            results.append("ran dry")

        t = threading.Thread(target=producer)
        t.start()
        time.sleep(0.02)  # producer fills the one slot and blocks
        channel.close()
        t.join(timeout=5)
        assert results == ["stopped"]

    def test_drain_close_before_first_item_unblocks_producer(self):
        channel = BatchChannel(capacity=1, ttl_s=None)
        results = []

        def producer():
            for batch in make_batches([1] * 5):
                if not channel.put(batch):
                    results.append("stopped")
                    return
            results.append("ran dry")

        t = threading.Thread(target=producer)
        t.start()
        time.sleep(0.02)
        batches = channel.drain()
        batches.close()  # never iterated — must still hang up
        t.join(timeout=5)
        assert results == ["stopped"]

    def test_force_close_surfaces_invalid_error(self):
        channel = BatchChannel(capacity=1, ttl_s=None)
        # Third party (service shutdown) closed; producer never finished.
        channel.close(by_consumer=False)
        with pytest.raises(CursorInvalidError):
            next(channel.drain())

    def test_self_close_surfaces_closed_error_not_invalid(self):
        channel = BatchChannel(capacity=1, ttl_s=None)
        channel.close()  # the consumer hung up on itself...
        with pytest.raises(CursorClosedError):
            channel.get()  # ...then asked for more: its own doing

    def test_self_close_wins_over_later_force_close(self):
        channel = BatchChannel(capacity=1, ttl_s=None)
        channel.close()
        channel.close(by_consumer=False)  # shutdown races the hang-up
        with pytest.raises(CursorClosedError):
            channel.get()

    def test_producer_error_redelivered_as_fresh_instances(self):
        channel = BatchChannel(capacity=4, ttl_s=None)
        original = CursorTimeoutError("producer gave up")
        try:
            raise original  # give it a producer-side traceback
        except CursorTimeoutError as exc:
            channel.finish(exc)
        seen = []
        for _ in range(2):
            with pytest.raises(CursorTimeoutError) as info:
                channel.get()
            seen.append(info.value)
        first, second = seen
        assert first is not original and second is not original
        assert first is not second  # no shared, traceback-mutated instance
        assert str(first) == str(second) == "producer gave up"
        # The producer-side traceback stays reachable through the cause.
        assert first.__cause__ is original
        assert original.__traceback__ is not None

    def test_cursor_fetchone_twice_after_producer_error(self):
        # Regression: a cursor over a failed channel must re-report the
        # failure on every subsequent fetch, not return a clean empty
        # tail, and each delivery must be a distinct instance.
        channel = BatchChannel(capacity=4, ttl_s=None)
        channel.put(make_batch(0, 1))
        channel.finish(CursorTimeoutError("consumer too slow"))
        cursor = Cursor(
            ["a", "b"], [DataType.INTEGER, DataType.INTEGER], channel.drain()
        )
        assert cursor.fetchone() == (0, 0)
        with pytest.raises(CursorTimeoutError) as first:
            cursor.fetchone()
        with pytest.raises(CursorTimeoutError) as second:
            cursor.fetchone()
        assert first.value is not second.value
        assert cursor.exhausted and not cursor.closed
