"""Unit tests for raw-file change detection."""

import os

import pytest

from repro.core.updates import (
    FileChange,
    detect_change,
    fingerprint_file,
)


@pytest.fixture
def raw_file(tmp_path):
    path = tmp_path / "data.csv"
    path.write_text("a,b\n1,2\n3,4\n" * 100)
    return path


class TestFingerprint:
    def test_deterministic(self, raw_file):
        a = fingerprint_file(raw_file)
        b = fingerprint_file(raw_file)
        assert a == b

    def test_size_recorded(self, raw_file):
        fp = fingerprint_file(raw_file)
        assert fp.size_bytes == os.stat(raw_file).st_size

    def test_different_content_different_hash(self, tmp_path):
        p1 = tmp_path / "a.csv"
        p2 = tmp_path / "b.csv"
        p1.write_text("hello\n")
        p2.write_text("world\n")
        assert fingerprint_file(p1).head_hash != fingerprint_file(p2).head_hash


class TestDetectChange:
    def test_unchanged(self, raw_file):
        fp = fingerprint_file(raw_file)
        change, new_fp = detect_change(fp, raw_file)
        assert change is FileChange.UNCHANGED
        assert new_fp == fp

    def test_touch_without_content_change(self, raw_file):
        fp = fingerprint_file(raw_file)
        os.utime(raw_file)  # bump mtime only
        change, __ = detect_change(fp, raw_file)
        assert change is FileChange.UNCHANGED

    def test_append_detected(self, raw_file):
        fp = fingerprint_file(raw_file)
        with open(raw_file, "a") as f:
            f.write("5,6\n7,8\n")
        change, new_fp = detect_change(fp, raw_file)
        assert change is FileChange.APPENDED
        assert new_fp.size_bytes > fp.size_bytes

    def test_rewrite_same_size_detected(self, raw_file):
        fp = fingerprint_file(raw_file)
        content = raw_file.read_text()
        raw_file.write_text("X" + content[1:])  # same length, new bytes
        change, __ = detect_change(fp, raw_file)
        assert change is FileChange.REWRITTEN

    def test_shrink_is_rewrite(self, raw_file):
        fp = fingerprint_file(raw_file)
        content = raw_file.read_text()
        raw_file.write_text(content[: len(content) // 2])
        change, __ = detect_change(fp, raw_file)
        assert change is FileChange.REWRITTEN

    def test_grow_with_prefix_change_is_rewrite(self, raw_file):
        fp = fingerprint_file(raw_file)
        content = raw_file.read_text()
        raw_file.write_text("Z" + content[1:] + "extra,rows\n")
        change, __ = detect_change(fp, raw_file)
        assert change is FileChange.REWRITTEN

    def test_grow_with_tail_change_is_rewrite(self, raw_file):
        fp = fingerprint_file(raw_file)
        content = raw_file.read_text()
        # Mutate the last line of the old extent while also growing.
        mutated = content[:-2] + "X\nmore,data\n"
        raw_file.write_text(mutated)
        change, __ = detect_change(fp, raw_file)
        assert change is FileChange.REWRITTEN

    def test_missing_file(self, raw_file):
        fp = fingerprint_file(raw_file)
        os.remove(raw_file)
        change, new_fp = detect_change(fp, raw_file)
        assert change is FileChange.MISSING
        assert new_fp is None

    def test_repeated_appends(self, raw_file):
        fp = fingerprint_file(raw_file)
        for __ in range(3):
            with open(raw_file, "a") as f:
                f.write("9,9\n")
            change, fp = detect_change(fp, raw_file)
            assert change is FileChange.APPENDED


def test_append_to_empty_table_keeps_first_byte(tmp_path):
    """Regression: the zero-row line index must place its boundary at
    len(content), not one past it — the append-resume tokenizer starts
    there, and overshooting ate the first byte of the first appended
    row (`0,1` parsed as `(NULL, 1)`)."""
    from repro import (
        Column,
        DataType,
        PostgresRaw,
        TableSchema,
        append_csv_rows,
    )

    schema = TableSchema(
        [Column("id", DataType.INTEGER), Column("g", DataType.INTEGER)]
    )
    path = tmp_path / "empty.csv"
    path.write_text("id,g\n", encoding="utf-8")
    engine = PostgresRaw()
    engine.register_csv("t", path, schema)
    assert engine.query("SELECT * FROM t").rows == []
    append_csv_rows(path, [(0, 1)], schema)
    assert engine.query("SELECT * FROM t").rows == [(0, 1)]
    append_csv_rows(path, [(2, 3)], schema)
    assert engine.query("SELECT * FROM t").rows == [(0, 1), (2, 3)]
