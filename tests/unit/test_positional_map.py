"""Unit tests for the adaptive positional map."""

import numpy as np
import pytest

from repro.core.positional_map import PositionalChunk, PositionalMap
from repro.errors import ReproError


def _offsets(rows, attrs, base=0):
    """Deterministic fake offsets matrix."""
    return (
        np.arange(rows * attrs, dtype=np.int64).reshape(rows, attrs) + base
    )


class TestPositionalChunk:
    def test_requires_sorted_attrs(self):
        with pytest.raises(ReproError):
            PositionalChunk((2, 1), _offsets(3, 2))

    def test_shape_must_match(self):
        with pytest.raises(ReproError):
            PositionalChunk((0, 1, 2), _offsets(3, 2))

    def test_column_of(self):
        chunk = PositionalChunk((1, 3, 5), _offsets(2, 3))
        assert chunk.column_of(3) == 1
        with pytest.raises(ReproError):
            chunk.column_of(2)

    def test_rows_and_bytes(self):
        chunk = PositionalChunk((0, 1), _offsets(10, 2))
        assert chunk.rows == 10
        assert chunk.nbytes == 10 * 2 * 8

    def test_starts_for(self):
        chunk = PositionalChunk((0, 2), _offsets(4, 2))
        assert chunk.starts_for(2, 1, 3).tolist() == [3, 5]


class TestInstallAndLookup:
    def test_install_and_find_exact(self):
        pm = PositionalMap(budget_bytes=1 << 20)
        chunk = pm.install((0, 1), _offsets(5, 2))
        assert chunk is not None
        assert pm.find_exact((0, 1)) is chunk
        assert pm.find_exact((0, 2)) is None

    def test_best_cover_prefers_deeper(self):
        pm = PositionalMap(budget_bytes=1 << 20)
        pm.install((0, 1), _offsets(5, 2))
        deep = pm.install((1, 2), _offsets(10, 2))
        assert pm.best_cover(1) is deep
        assert pm.coverage_rows(1) == 10
        assert pm.coverage_rows(7) == 0

    def test_superset_chunk_subsumes_install(self):
        pm = PositionalMap(budget_bytes=1 << 20)
        big = pm.install((0, 1, 2), _offsets(10, 3))
        again = pm.install((1, 2), _offsets(10, 2))
        assert again is big  # redundant combination not duplicated
        assert pm.chunk_count == 1

    def test_install_drops_subsumed_chunks(self):
        pm = PositionalMap(budget_bytes=1 << 20)
        pm.install((1,), _offsets(5, 1))
        pm.install((0, 1, 2), _offsets(5, 3))
        assert pm.chunk_count == 1

    def test_upgrade_replaces_shallower_exact(self):
        pm = PositionalMap(budget_bytes=1 << 20)
        pm.install((0, 1), _offsets(5, 2))
        upgraded = pm.install((0, 1), _offsets(9, 2))
        assert upgraded.rows == 9
        assert pm.chunk_count == 1

    def test_install_shallower_exact_is_noop(self):
        pm = PositionalMap(budget_bytes=1 << 20)
        deep = pm.install((0, 1), _offsets(9, 2))
        result = pm.install((0, 1), _offsets(3, 2))
        assert result is deep
        assert pm.find_exact((0, 1)).rows == 9


class TestAnchors:
    def test_best_anchor_below(self):
        pm = PositionalMap(budget_bytes=1 << 20)
        pm.install((0, 2), _offsets(10, 2))
        hit = pm.best_anchor(5, min_rows=10)
        assert hit is not None
        assert hit.attr == 2
        assert hit.column == 1

    def test_anchor_requires_coverage(self):
        pm = PositionalMap(budget_bytes=1 << 20)
        pm.install((0, 2), _offsets(5, 2))
        assert pm.best_anchor(5, min_rows=10) is None

    def test_anchor_exact_attribute(self):
        pm = PositionalMap(budget_bytes=1 << 20)
        pm.install((3,), _offsets(10, 1))
        hit = pm.best_anchor(3, min_rows=10)
        assert hit.attr == 3

    def test_no_anchor_above(self):
        pm = PositionalMap(budget_bytes=1 << 20)
        pm.install((5,), _offsets(10, 1))
        assert pm.best_anchor(3, min_rows=10) is None


class TestBudgetAndLRU:
    def test_budget_never_exceeded(self):
        budget = 4 * 10 * 8  # room for ~2 single-attr 10-row chunks...
        pm = PositionalMap(budget_bytes=budget)
        for attr in range(6):
            pm.install((attr,), _offsets(10, 1))
            assert pm.used_bytes <= budget

    def test_lru_evicts_oldest(self):
        pm = PositionalMap(budget_bytes=2 * 10 * 8)
        pm.tick()
        a = pm.install((0,), _offsets(10, 1))
        pm.tick()
        pm.install((1,), _offsets(10, 1))
        pm.tick()
        pm.touch(a)  # refresh a; (1,) is now LRU
        pm.install((2,), _offsets(10, 1))
        attrs = {c.attrs for c in pm.chunks()}
        assert (0,) in attrs and (2,) in attrs and (1,) not in attrs
        assert pm.evictions == 1

    def test_oversized_install_rejected(self):
        pm = PositionalMap(budget_bytes=8)
        assert pm.install((0,), _offsets(10, 1)) is None
        assert pm.rejected_installs == 1

    def test_protected_chunks_survive(self):
        pm = PositionalMap(budget_bytes=2 * 10 * 8)
        a = pm.install((0,), _offsets(10, 1))
        b = pm.install((1,), _offsets(10, 1))
        result = pm.install((2,), _offsets(10, 1), protected={id(a), id(b)})
        assert result is None  # nothing evictable
        assert pm.find_exact((0,)) is a and pm.find_exact((1,)) is b

    def test_extend(self):
        pm = PositionalMap(budget_bytes=1 << 20)
        chunk = pm.install((0, 1), _offsets(5, 2))
        assert pm.extend(chunk, _offsets(3, 2, base=100))
        assert chunk.rows == 8

    def test_extend_width_mismatch(self):
        pm = PositionalMap(budget_bytes=1 << 20)
        chunk = pm.install((0, 1), _offsets(5, 2))
        with pytest.raises(ReproError):
            pm.extend(chunk, _offsets(3, 3))

    def test_extend_budget_refused(self):
        pm = PositionalMap(budget_bytes=5 * 2 * 8)
        chunk = pm.install((0, 1), _offsets(5, 2))
        assert not pm.extend(chunk, _offsets(5, 2))
        assert chunk.rows == 5


class TestLineBoundsAndMaintenance:
    def test_line_bounds(self):
        pm = PositionalMap(budget_bytes=1 << 20)
        assert pm.line_bounds is None and pm.n_rows == 0
        pm.set_line_bounds(np.array([0, 5, 10]))
        assert pm.n_rows == 2
        assert pm.line_index_bytes == 3 * 8

    def test_invalidate(self):
        pm = PositionalMap(budget_bytes=1 << 20)
        pm.set_line_bounds(np.array([0, 5]))
        pm.install((0,), _offsets(1, 1))
        pm.invalidate()
        assert pm.chunk_count == 0
        assert pm.line_bounds is None

    def test_coverage_fraction(self):
        pm = PositionalMap(budget_bytes=1 << 20)
        assert pm.coverage_fraction(4, 10) == 0.0
        pm.install((0, 1), _offsets(10, 2))
        assert pm.coverage_fraction(4, 10) == pytest.approx(0.5)
        assert pm.coverage_fraction(0, 0) == 0.0

    def test_describe(self):
        pm = PositionalMap(budget_bytes=1 << 20)
        pm.install((1, 2), _offsets(4, 2))
        info = pm.describe()
        assert info[0]["attrs"] == (1, 2)
        assert info[0]["rows"] == 4
