"""Unit tests for vectorized expression evaluation (3-valued logic)."""

import pytest

from repro.batch import Batch, ColumnVector
from repro.datatypes import DataType, parse_date
from repro.errors import ExecutionError
from repro.executor.expressions import (
    evaluate,
    infer_type,
    normalize_expression,
    predicate_mask,
)
from repro.sql.parser import parse_select


def _batch(**cols):
    out = {}
    for name, (dtype, values) in cols.items():
        out[name] = ColumnVector.from_pylist(dtype, values)
    return Batch(out)


def _expr(sql_fragment):
    """Parse an expression via a dummy SELECT."""
    return parse_select(f"SELECT {sql_fragment}").items[0].expr


def _eval(sql_fragment, batch):
    return evaluate(_expr(sql_fragment), batch).to_pylist()


class TestLiteralsAndColumns:
    def test_column_lookup(self):
        batch = _batch(a=(DataType.INTEGER, [1, 2]))
        assert _eval("a", batch) == [1, 2]

    def test_literal_broadcast(self):
        batch = _batch(a=(DataType.INTEGER, [1, 2, 3]))
        assert _eval("7", batch) == [7, 7, 7]
        assert _eval("'x'", batch) == ["x", "x", "x"]
        assert _eval("NULL", batch) == [None, None, None]


class TestComparisons:
    def test_numeric(self):
        batch = _batch(a=(DataType.INTEGER, [1, 5, 3]))
        assert _eval("a < 3", batch) == [True, False, False]
        assert _eval("a >= 3", batch) == [False, True, True]
        assert _eval("a = 5", batch) == [False, True, False]
        assert _eval("a <> 5", batch) == [True, False, True]

    def test_null_propagation(self):
        batch = _batch(a=(DataType.INTEGER, [1, None]))
        assert _eval("a < 3", batch) == [True, None]

    def test_int_float_mixed(self):
        batch = _batch(a=(DataType.FLOAT, [1.5, 2.5]))
        assert _eval("a > 2", batch) == [False, True]

    def test_text_comparison(self):
        batch = _batch(s=(DataType.TEXT, ["apple", "pear", None]))
        assert _eval("s = 'pear'", batch) == [False, True, None]
        assert _eval("s < 'b'", batch) == [True, False, None]

    def test_text_vs_number_raises(self):
        batch = _batch(s=(DataType.TEXT, ["a"]))
        with pytest.raises(ExecutionError):
            _eval("s = 5", batch)

    def test_bool_vs_date_raises(self):
        batch = _batch(
            b=(DataType.BOOLEAN, [True]), d=(DataType.DATE, [5])
        )
        with pytest.raises(ExecutionError):
            _eval("b = d", batch)


class TestLogic:
    def test_kleene_and(self):
        batch = _batch(
            p=(DataType.BOOLEAN, [True, True, False, None, None, False]),
            q=(DataType.BOOLEAN, [True, None, None, None, False, False]),
        )
        assert _eval("p AND q", batch) == [
            True,
            None,
            False,
            None,
            False,
            False,
        ]

    def test_kleene_or(self):
        batch = _batch(
            p=(DataType.BOOLEAN, [True, False, None, None]),
            q=(DataType.BOOLEAN, [False, None, True, None]),
        )
        assert _eval("p OR q", batch) == [True, None, True, None]

    def test_not(self):
        batch = _batch(p=(DataType.BOOLEAN, [True, False, None]))
        assert _eval("NOT p", batch) == [False, True, None]

    def test_and_requires_boolean(self):
        batch = _batch(a=(DataType.INTEGER, [1]))
        with pytest.raises(ExecutionError):
            _eval("a AND a", batch)

    def test_predicate_mask_null_is_false(self):
        batch = _batch(a=(DataType.INTEGER, [1, None, 5]))
        mask = predicate_mask(_expr("a < 3"), batch)
        assert mask.tolist() == [True, False, False]

    def test_predicate_mask_requires_boolean(self):
        batch = _batch(a=(DataType.INTEGER, [1]))
        with pytest.raises(ExecutionError):
            predicate_mask(_expr("a + 1"), batch)


class TestArithmetic:
    def test_integer_ops(self):
        batch = _batch(a=(DataType.INTEGER, [7, 10]))
        assert _eval("a + 3", batch) == [10, 13]
        assert _eval("a - 3", batch) == [4, 7]
        assert _eval("a * 2", batch) == [14, 20]
        assert _eval("a % 3", batch) == [1, 1]

    def test_division_always_float(self):
        batch = _batch(a=(DataType.INTEGER, [7]))
        result = evaluate(_expr("a / 2"), batch)
        assert result.dtype is DataType.FLOAT
        assert result.to_pylist() == [3.5]

    def test_division_by_zero_is_null(self):
        batch = _batch(
            a=(DataType.INTEGER, [7, 8]), b=(DataType.INTEGER, [0, 2])
        )
        assert _eval("a / b", batch) == [None, 4.0]
        assert _eval("a % b", batch) == [None, 0]

    def test_null_propagation(self):
        batch = _batch(a=(DataType.INTEGER, [None, 2]))
        assert _eval("a + 1", batch) == [None, 3]

    def test_unary_minus(self):
        batch = _batch(a=(DataType.INTEGER, [3, -4]))
        assert _eval("-a", batch) == [-3, 4]

    def test_arithmetic_on_text_raises(self):
        batch = _batch(s=(DataType.TEXT, ["a"]))
        with pytest.raises(ExecutionError):
            _eval("s + 1", batch)

    def test_date_arithmetic(self):
        batch = _batch(d=(DataType.DATE, [100]))
        result = evaluate(_expr("d + 5"), batch)
        assert result.dtype is DataType.DATE
        assert result.to_pylist() == [105]

    def test_concat(self):
        batch = _batch(s=(DataType.TEXT, ["ab", None]))
        assert _eval("s || 'cd'", batch) == ["abcd", None]


class TestPredicates:
    def test_between(self):
        batch = _batch(a=(DataType.INTEGER, [1, 5, 10, None]))
        assert _eval("a BETWEEN 2 AND 9", batch) == [
            False,
            True,
            False,
            None,
        ]
        assert _eval("a NOT BETWEEN 2 AND 9", batch) == [
            True,
            False,
            True,
            None,
        ]

    def test_in_list(self):
        batch = _batch(a=(DataType.INTEGER, [1, 4, None]))
        assert _eval("a IN (1, 2)", batch) == [True, False, None]
        assert _eval("a NOT IN (1, 2)", batch) == [False, True, None]

    def test_in_list_with_null_item(self):
        batch = _batch(a=(DataType.INTEGER, [1, 4]))
        # 1 IN (1, NULL) is TRUE; 4 IN (1, NULL) is NULL.
        assert _eval("a IN (1, NULL)", batch) == [True, None]

    def test_like(self):
        batch = _batch(
            s=(DataType.TEXT, ["hello", "help", "yelp", None])
        )
        assert _eval("s LIKE 'hel%'", batch) == [True, True, False, None]
        assert _eval("s LIKE '_el_'", batch) == [False, True, True, None]
        assert _eval("s NOT LIKE 'hel%'", batch) == [
            False,
            False,
            True,
            None,
        ]

    def test_like_escapes_regex_chars(self):
        batch = _batch(s=(DataType.TEXT, ["a.b", "axb"]))
        assert _eval("s LIKE 'a.b'", batch) == [True, False]

    def test_like_requires_text(self):
        batch = _batch(a=(DataType.INTEGER, [1]))
        with pytest.raises(ExecutionError):
            _eval("a LIKE 'x'", batch)

    def test_is_null(self):
        batch = _batch(a=(DataType.INTEGER, [1, None]))
        assert _eval("a IS NULL", batch) == [False, True]
        assert _eval("a IS NOT NULL", batch) == [True, False]


class TestScalarFunctions:
    def test_abs(self):
        batch = _batch(a=(DataType.INTEGER, [-3, 4, None]))
        assert _eval("ABS(a)", batch) == [3, 4, None]

    def test_lower_upper_length(self):
        batch = _batch(s=(DataType.TEXT, ["AbC", None]))
        assert _eval("LOWER(s)", batch) == ["abc", None]
        assert _eval("UPPER(s)", batch) == ["ABC", None]
        assert _eval("LENGTH(s)", batch) == [3, None]

    def test_aggregate_outside_group_raises(self):
        batch = _batch(a=(DataType.INTEGER, [1]))
        with pytest.raises(ExecutionError):
            _eval("SUM(a)", batch)


class TestTypeInference:
    TYPES = {
        "a": DataType.INTEGER,
        "f": DataType.FLOAT,
        "s": DataType.TEXT,
        "d": DataType.DATE,
        "b": DataType.BOOLEAN,
    }

    @pytest.mark.parametrize(
        "fragment,expected",
        [
            ("a + 1", DataType.INTEGER),
            ("a + f", DataType.FLOAT),
            ("a / 2", DataType.FLOAT),
            ("a = 1", DataType.BOOLEAN),
            ("s || 'x'", DataType.TEXT),
            ("d - d", DataType.INTEGER),
            ("d + 1", DataType.DATE),
            ("COUNT(*)", DataType.INTEGER),
            ("SUM(a)", DataType.INTEGER),
            ("SUM(f)", DataType.FLOAT),
            ("AVG(a)", DataType.FLOAT),
            ("MIN(s)", DataType.TEXT),
            ("LENGTH(s)", DataType.INTEGER),
            ("a IS NULL", DataType.BOOLEAN),
        ],
    )
    def test_inference(self, fragment, expected):
        assert infer_type(_expr(fragment), self.TYPES) is expected

    def test_unknown_column_raises(self):
        with pytest.raises(ExecutionError):
            infer_type(_expr("zz"), self.TYPES)

    def test_sum_star_raises(self):
        with pytest.raises(ExecutionError):
            infer_type(_expr("SUM(*)"), self.TYPES)


class TestNormalization:
    def test_date_literal_coercion(self):
        expr = _expr("d >= '2012-08-27'")
        normalize_expression(expr, {"d": DataType.DATE})
        assert expr.right.dtype is DataType.DATE
        assert expr.right.value == parse_date("2012-08-27")

    def test_between_coercion(self):
        expr = _expr("d BETWEEN '2012-01-01' AND '2012-12-31'")
        normalize_expression(expr, {"d": DataType.DATE})
        assert expr.low.dtype is DataType.DATE
        assert expr.high.dtype is DataType.DATE

    def test_text_column_untouched(self):
        expr = _expr("s = '2012-01-01'")
        normalize_expression(expr, {"s": DataType.TEXT})
        assert expr.right.dtype is DataType.TEXT
