"""Unit tests for metrics accounting and engine configuration."""

import time

import pytest

from repro.config import PostgresRawConfig
from repro.core.metrics import BreakdownComponent, QueryMetrics, Stopwatch
from repro.errors import BudgetError


class TestQueryMetrics:
    def test_time_context_accumulates(self):
        metrics = QueryMetrics()
        with metrics.time(BreakdownComponent.TOKENIZING):
            time.sleep(0.002)
        with metrics.time(BreakdownComponent.TOKENIZING):
            time.sleep(0.002)
        assert metrics.tokenizing_seconds >= 0.004

    def test_begin_end_total(self):
        metrics = QueryMetrics()
        metrics.begin()
        time.sleep(0.002)
        metrics.end()
        assert metrics.total_seconds >= 0.002

    def test_component_order_matches_figure3(self):
        metrics = QueryMetrics()
        assert list(metrics.component_seconds()) == [
            "processing",
            "io",
            "convert",
            "parsing",
            "tokenizing",
            "nodb",
        ]

    def test_settle_processing_residual(self):
        metrics = QueryMetrics()
        metrics.total_seconds = 1.0
        metrics.io_seconds = 0.2
        metrics.tokenizing_seconds = 0.3
        metrics.settle_processing()
        assert metrics.processing_seconds == pytest.approx(0.5)

    def test_settle_processing_clamps_nonnegative(self):
        metrics = QueryMetrics()
        metrics.total_seconds = 0.1
        metrics.io_seconds = 0.5
        metrics.settle_processing()
        assert metrics.processing_seconds == 0.0

    def test_merge(self):
        a = QueryMetrics(io_seconds=0.1, cache_hits=2, bytes_read=10)
        b = QueryMetrics(io_seconds=0.2, cache_hits=3, bytes_read=5)
        a.merge(b)
        assert a.io_seconds == pytest.approx(0.3)
        assert a.cache_hits == 5
        assert a.bytes_read == 15

    def test_add_component(self):
        metrics = QueryMetrics()
        metrics.add(BreakdownComponent.NODB, 0.25)
        assert metrics.nodb_seconds == 0.25

    def test_stopwatch(self):
        watch = Stopwatch()
        time.sleep(0.002)
        first = watch.restart()
        assert first >= 0.002
        assert watch.elapsed() < first


class TestPostgresRawConfig:
    def test_defaults_enable_everything(self):
        config = PostgresRawConfig()
        assert config.enable_positional_map
        assert config.enable_cache
        assert config.enable_statistics
        assert config.selective_tokenizing
        assert config.selective_parsing
        assert config.selective_tuple_formation

    def test_baseline_disables_adaptive_parts(self):
        config = PostgresRawConfig.baseline()
        assert not config.enable_positional_map
        assert not config.enable_cache
        assert not config.enable_statistics
        # Selective scanning stays on (shared scan operator).
        assert config.selective_tokenizing

    def test_pm_only_and_cache_only(self):
        assert not PostgresRawConfig.pm_only().enable_cache
        assert PostgresRawConfig.pm_only().enable_positional_map
        assert not PostgresRawConfig.cache_only().enable_positional_map
        assert PostgresRawConfig.cache_only().enable_cache

    def test_with_overrides_is_pure(self):
        base = PostgresRawConfig()
        derived = base.with_overrides(cache_budget=123)
        assert derived.cache_budget == 123
        assert base.cache_budget != 123

    @pytest.mark.parametrize(
        "field,value",
        [
            ("positional_map_budget", -1),
            ("cache_budget", -5),
            ("batch_size", 0),
            ("stats_sample_size", 0),
            ("histogram_buckets", -2),
            ("scan_workers", 0),
            ("scan_workers", -3),
            ("parallel_chunk_bytes", 0),
            ("parallel_chunk_bytes", -1),
            ("parallel_backend", "fibers"),
            ("parallel_backend", ""),
        ],
    )
    def test_invalid_values_raise(self, field, value):
        with pytest.raises(BudgetError):
            PostgresRawConfig(**{field: value})

    def test_parallel_defaults_keep_serial_path(self):
        config = PostgresRawConfig()
        assert config.scan_workers == 1
        assert config.parallel_backend == "thread"
        assert config.parallel_chunk_bytes > 0

    def test_parallel_overrides_accepted(self):
        config = PostgresRawConfig().with_overrides(
            scan_workers=8,
            parallel_chunk_bytes=4096,
            parallel_backend="process",
        )
        assert config.scan_workers == 8
        assert config.parallel_chunk_bytes == 4096
        assert config.parallel_backend == "process"


class TestParallelMetricsAccounting:
    def test_absorb_workers_scales_to_wall_time(self):
        main = QueryMetrics()
        workers = []
        for __ in range(4):
            w = QueryMetrics()
            w.tokenizing_seconds = 0.3
            w.convert_seconds = 0.1
            w.fields_tokenized = 100
            w.bytes_read = 10
            workers.append(w)
        main.absorb_workers(0.5, workers)
        # Volume counters add exactly; seconds are apportioned wall time.
        assert main.fields_tokenized == 400
        assert main.bytes_read == 40
        assert main.parallel_chunks == 4
        assert main.accounted_seconds() == pytest.approx(0.5)
        assert main.tokenizing_seconds == pytest.approx(0.5 * 0.75)
        assert main.convert_seconds == pytest.approx(0.5 * 0.25)
        assert len(main.worker_breakdowns) == 4

    def test_absorb_workers_with_zero_cpu_charges_io(self):
        main = QueryMetrics()
        main.absorb_workers(0.25, [QueryMetrics(), QueryMetrics()])
        assert main.io_seconds == pytest.approx(0.25)

    def test_merge_extends_worker_breakdowns(self):
        a, b = QueryMetrics(), QueryMetrics()
        b.absorb_workers(0.1, [QueryMetrics()])
        a.merge(b)
        assert a.parallel_scans == 1
        assert a.parallel_scan_seconds == pytest.approx(0.1)
        assert len(a.worker_breakdowns) == 1
