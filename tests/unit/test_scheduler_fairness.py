"""Per-session fairness of the admission scheduler: slots are granted
round-robin across sessions, so a greedy session's backlog cannot starve
another session's single query."""

from __future__ import annotations

import threading
import time

from repro.service import QueryScheduler


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.005)


def test_single_waiter_not_starved_by_greedy_session():
    scheduler = QueryScheduler(max_concurrent=1, queue_depth=16)
    scheduler.acquire("holder")  # occupy the only slot
    order: list[str] = []
    threads = []

    def worker(session_id):
        scheduler.acquire(session_id)
        order.append(session_id)
        scheduler.release()

    # Three queries from greedy session A queue up first...
    for i in range(3):
        t = threading.Thread(target=worker, args=("A",))
        t.start()
        threads.append(t)
        wait_for(lambda n=i: scheduler.waiting == n + 1)
    # ...then one interactive query from session B.
    tb = threading.Thread(target=worker, args=("B",))
    tb.start()
    threads.append(tb)
    wait_for(lambda: scheduler.waiting == 4)

    scheduler.release()  # free the slot; grants cascade
    for t in threads:
        t.join(timeout=5)

    # Round-robin: B's lone query is admitted right after one A query,
    # not behind A's whole backlog (FIFO would give A, A, A, B).
    assert order == ["A", "B", "A", "A"]
    stats = scheduler.stats()
    assert stats["active"] == 0 and stats["waiting"] == 0
    assert stats["admitted"] == stats["completed"] == 5


def test_fifo_within_one_session():
    scheduler = QueryScheduler(max_concurrent=1, queue_depth=16)
    scheduler.acquire("holder")
    order: list[int] = []
    threads = []

    def worker(tag):
        scheduler.acquire("A")
        order.append(tag)
        scheduler.release()

    for i in range(4):
        t = threading.Thread(target=worker, args=(i,))
        t.start()
        threads.append(t)
        wait_for(lambda n=i: scheduler.waiting == n + 1)

    scheduler.release()
    for t in threads:
        t.join(timeout=5)
    assert order == [0, 1, 2, 3]


def test_two_greedy_sessions_interleave():
    scheduler = QueryScheduler(max_concurrent=1, queue_depth=32)
    scheduler.acquire("holder")
    order: list[str] = []
    threads = []

    def worker(session_id):
        scheduler.acquire(session_id)
        order.append(session_id)
        scheduler.release()

    # Enqueue A A A, then B B B — deterministic arrival order.
    for n, sid in enumerate(["A", "A", "A", "B", "B", "B"]):
        t = threading.Thread(target=worker, args=(sid,))
        t.start()
        threads.append(t)
        wait_for(lambda k=n: scheduler.waiting == k + 1)

    scheduler.release()
    for t in threads:
        t.join(timeout=5)
    assert order == ["A", "B", "A", "B", "A", "B"]
