"""Unit tests for the conventional DBMS baselines."""

import pytest

from repro import generate_csv, uniform_table_spec
from repro.baselines import (
    ConventionalDBMS,
    DBMS_X,
    ExternalFilesDBMS,
    MYSQL,
    POSTGRESQL,
)
from repro.errors import CatalogError


@pytest.fixture(scope="module")
def raw(tmp_path_factory):
    path = tmp_path_factory.mktemp("conv") / "t.csv"
    schema = generate_csv(path, uniform_table_spec(6, 3000, seed=31))
    return path, schema


def _loaded(raw, tmp_path, profile=POSTGRESQL):
    path, schema = raw
    db = ConventionalDBMS(profile, storage_dir=tmp_path / "store")
    db.load_csv("t", path, schema)
    return db


class TestLoading:
    def test_load_report(self, raw, tmp_path):
        db = _loaded(raw, tmp_path)
        report = db.load_reports["t"]
        assert report.rows == 3000
        assert report.total_seconds > 0
        assert report.write_seconds > 0
        assert db.initialization_seconds("t") == report.total_seconds

    def test_analyze_on_load_profiles(self, raw, tmp_path):
        pg = _loaded(raw, tmp_path / "pg", POSTGRESQL)
        assert pg.load_reports["t"].analyze_seconds > 0
        my = _loaded(raw, tmp_path / "my", MYSQL)
        assert my.load_reports["t"].analyze_seconds == 0

    def test_query_unloaded_table_raises(self, raw, tmp_path):
        path, schema = raw
        db = ConventionalDBMS(storage_dir=tmp_path / "empty")
        with pytest.raises(CatalogError):
            db.query("SELECT * FROM t")

    def test_explicit_analyze(self, raw, tmp_path):
        db = _loaded(raw, tmp_path, MYSQL)
        seconds = db.analyze("t")
        assert seconds > 0
        assert db.load_reports["t"].analyze_seconds == pytest.approx(
            seconds
        )


class TestQueryEquivalence:
    QUERIES = [
        "SELECT a0, a2 FROM t WHERE a1 < 250000 ORDER BY a0 LIMIT 9",
        "SELECT COUNT(*) AS n FROM t",
        "SELECT a3, COUNT(*) AS c FROM t WHERE a0 > 500000 "
        "GROUP BY a3 ORDER BY c DESC, a3 LIMIT 5",
    ]

    def test_profiles_agree(self, raw, tmp_path):
        engines = [
            _loaded(raw, tmp_path / "pg", POSTGRESQL),
            _loaded(raw, tmp_path / "my", MYSQL),
            _loaded(raw, tmp_path / "dx", DBMS_X),
        ]
        for query in self.QUERIES:
            results = [list(db.query(query)) for db in engines]
            assert results[0] == results[1] == results[2]

    def test_matches_external_files(self, raw, tmp_path):
        path, schema = raw
        db = _loaded(raw, tmp_path / "pg")
        ext = ExternalFilesDBMS()
        ext.register_csv("t", path, schema)
        for query in self.QUERIES:
            assert list(db.query(query)) == list(ext.query(query))


class TestIndexScans:
    def test_index_used_for_equality(self, raw, tmp_path):
        db = _loaded(raw, tmp_path)
        db.create_index("t", "a1")
        text = db.explain("SELECT a0 FROM t WHERE a1 = 12345")
        assert "IndexScan" in text

    def test_index_used_for_range(self, raw, tmp_path):
        db = _loaded(raw, tmp_path)
        db.create_index("t", "a1")
        assert "IndexScan" in db.explain(
            "SELECT a0 FROM t WHERE a1 < 1000"
        )
        assert "IndexScan" in db.explain(
            "SELECT a0 FROM t WHERE a1 BETWEEN 10 AND 20"
        )

    def test_no_index_no_indexscan(self, raw, tmp_path):
        db = _loaded(raw, tmp_path)
        assert "IndexScan" not in db.explain(
            "SELECT a0 FROM t WHERE a1 = 5"
        )

    def test_index_results_match_scan(self, raw, tmp_path):
        plain = _loaded(raw, tmp_path / "plain")
        indexed = _loaded(raw, tmp_path / "indexed")
        indexed.create_index("t", "a1")
        for query in [
            "SELECT a0 FROM t WHERE a1 < 100000 ORDER BY a0",
            "SELECT a0 FROM t WHERE a1 BETWEEN 100000 AND 200000 "
            "AND a2 > 500000 ORDER BY a0",
        ]:
            assert list(plain.query(query)) == list(indexed.query(query))

    def test_residual_predicate_applied(self, raw, tmp_path):
        db = _loaded(raw, tmp_path)
        db.create_index("t", "a1")
        result = db.query(
            "SELECT COUNT(*) AS n FROM t WHERE a1 < 500000 AND a2 < 500000"
        )
        brute = db.query(
            "SELECT COUNT(*) AS n FROM t WHERE a2 < 500000 AND a1 < 500000"
        )
        assert result.scalar() == brute.scalar()

    def test_create_index_on_unknown_column(self, raw, tmp_path):
        db = _loaded(raw, tmp_path)
        with pytest.raises(CatalogError):
            db.create_index("t", "zz")


class TestZoneMaps:
    def test_zone_map_scan_matches(self, raw, tmp_path):
        db = _loaded(raw, tmp_path, DBMS_X)
        narrow = db.query("SELECT COUNT(*) AS n FROM t WHERE a0 < 50000")
        pg = _loaded(raw, tmp_path / "pg2", POSTGRESQL)
        assert narrow.scalar() == pg.query(
            "SELECT COUNT(*) AS n FROM t WHERE a0 < 50000"
        ).scalar()

    def test_explain_shows_zonemap(self, raw, tmp_path):
        db = _loaded(raw, tmp_path, DBMS_X)
        assert "zonemap" in db.explain("SELECT a0 FROM t WHERE a0 < 100")
