"""Config-knob governance: every knob documented, README in sync.

``tools/gen_knob_table.py`` renders the README's knob table from the
``#:`` attribute docstrings on :class:`PostgresRawConfig`; this suite
is the drift gate — adding a knob without regenerating the table (or
without a docstring) fails here, not in review.
"""

from __future__ import annotations

import dataclasses
import sys
from pathlib import Path

import pytest

from repro import PostgresRawConfig
from repro.config import knob_docs, knob_table_markdown
from repro.errors import BudgetError

REPO = Path(__file__).resolve().parent.parent.parent

sys.path.insert(0, str(REPO / "tools"))

from gen_knob_table import render  # noqa: E402


def test_every_knob_has_a_docstring():
    docs = knob_docs()
    fields = {f.name for f in dataclasses.fields(PostgresRawConfig)}
    assert {doc["name"] for doc in docs} == fields
    undocumented = [doc["name"] for doc in docs if not doc["doc"]]
    assert not undocumented


def test_knob_table_lists_shard_knobs():
    table = knob_table_markdown()
    for knob in ("shard_count", "shard_scheme", "shard_data_dir"):
        assert f"`{knob}`" in table, knob


def test_readme_knob_table_is_fresh():
    """README.md must equal a fresh render (the --check CI gate)."""
    readme = (REPO / "README.md").read_text(encoding="utf-8")
    assert render(readme) == readme, (
        "README.md knob table is stale; run "
        "`PYTHONPATH=src python tools/gen_knob_table.py`"
    )


# ----------------------------------------------------------------------
# Shard knob validation.
# ----------------------------------------------------------------------


def test_shard_knob_defaults_are_single_node():
    config = PostgresRawConfig()
    assert config.shard_count == 1
    assert config.shard_scheme == "hash"
    assert config.shard_data_dir is None


def test_shard_count_must_be_positive():
    with pytest.raises(BudgetError, match="shard_count"):
        PostgresRawConfig(shard_count=0)


def test_shard_scheme_must_be_known():
    with pytest.raises(BudgetError, match="shard_scheme"):
        PostgresRawConfig(shard_scheme="modulo")
    PostgresRawConfig(shard_scheme="range")  # valid
