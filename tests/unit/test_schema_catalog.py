"""Unit tests for schemas and the catalog."""

import pytest

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Column, TableSchema
from repro.datatypes import DataType
from repro.errors import CatalogError, SchemaError
from repro.rawio.dialect import DEFAULT_DIALECT


class TestColumn:
    def test_valid_names(self):
        Column("abc", DataType.INTEGER)
        Column("a_b_1", DataType.TEXT)

    @pytest.mark.parametrize("name", ["", "a b", "a-b", "a.b"])
    def test_invalid_names(self, name):
        with pytest.raises(SchemaError):
            Column(name, DataType.INTEGER)


class TestTableSchema:
    def _schema(self):
        return TableSchema(
            [
                Column("x", DataType.INTEGER),
                Column("y", DataType.TEXT),
                Column("z", DataType.FLOAT),
            ]
        )

    def test_empty_raises(self):
        with pytest.raises(SchemaError):
            TableSchema([])

    def test_duplicates_raise(self):
        with pytest.raises(SchemaError, match="duplicate"):
            TableSchema(
                [Column("x", DataType.INTEGER), Column("x", DataType.TEXT)]
            )

    def test_positions(self):
        schema = self._schema()
        assert schema.position("x") == 0
        assert schema.position("z") == 2
        assert schema.positions(["z", "x"]) == [2, 0]
        with pytest.raises(CatalogError):
            schema.position("w")

    def test_from_pairs_with_type_names(self):
        schema = TableSchema.from_pairs([("a", "int"), ("b", "varchar")])
        assert schema.dtypes() == [DataType.INTEGER, DataType.TEXT]

    def test_subset_preserves_order(self):
        schema = self._schema()
        sub = schema.subset(["z", "x"])
        assert sub.names() == ["x", "z"]

    def test_equality(self):
        assert self._schema() == self._schema()
        assert self._schema() != TableSchema([Column("x", DataType.INTEGER)])

    def test_iteration_and_len(self):
        schema = self._schema()
        assert len(schema) == 3
        assert [c.name for c in schema] == ["x", "y", "z"]

    def test_dtype_of_and_has_column(self):
        schema = self._schema()
        assert schema.dtype_of("y") is DataType.TEXT
        assert schema.has_column("x")
        assert not schema.has_column("q")

    def test_repr(self):
        assert "x integer" in repr(self._schema())


class TestCatalog:
    def _schema(self):
        return TableSchema([Column("a", DataType.INTEGER)])

    def test_register_and_lookup_raw(self, tmp_path):
        catalog = Catalog()
        entry = catalog.register_raw(
            "t", self._schema(), tmp_path / "t.csv", DEFAULT_DIALECT
        )
        assert entry.kind == "raw"
        assert catalog.lookup("t") is entry
        assert catalog.has_table("t")
        assert catalog.table_names() == ["t"]
        assert catalog.schema_of("t") == self._schema()

    def test_duplicate_registration_raises(self, tmp_path):
        catalog = Catalog()
        catalog.register_raw(
            "t", self._schema(), tmp_path / "t.csv", DEFAULT_DIALECT
        )
        with pytest.raises(CatalogError):
            catalog.register_raw(
                "t", self._schema(), tmp_path / "u.csv", DEFAULT_DIALECT
            )

    def test_unknown_lookup_raises(self):
        with pytest.raises(CatalogError, match="unknown table"):
            Catalog().lookup("ghost")

    def test_drop(self, tmp_path):
        catalog = Catalog()
        catalog.register_raw(
            "t", self._schema(), tmp_path / "t.csv", DEFAULT_DIALECT
        )
        catalog.drop("t")
        assert not catalog.has_table("t")
        with pytest.raises(CatalogError):
            catalog.drop("t")
