"""The serving layer's moving parts in isolation: RW locks, admission
control, sessions, pool recycling and service lifecycle."""

from __future__ import annotations

import threading
import time

import pytest

from repro import PostgresRaw, PostgresRawConfig, PostgresRawService
from repro.errors import AdmissionError, CatalogError, ServiceError
from repro.service import QueryScheduler, RWLock


class TestRWLock:
    def test_readers_share(self):
        lock = RWLock()
        inside = threading.Barrier(2, timeout=5)

        def reader():
            with lock.read():
                inside.wait()  # both threads must be inside simultaneously

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert lock.read_acquisitions == 2

    def test_writer_excludes_readers(self):
        lock = RWLock()
        order: list[str] = []
        writer_in = threading.Event()

        def writer():
            with lock.write():
                writer_in.set()
                time.sleep(0.05)
                order.append("writer")

        def reader():
            writer_in.wait(timeout=5)
            with lock.read():
                order.append("reader")

        tw = threading.Thread(target=writer)
        tr = threading.Thread(target=reader)
        tw.start()
        tr.start()
        tw.join(timeout=5)
        tr.join(timeout=5)
        assert order == ["writer", "reader"]
        assert lock.read_contentions >= 1

    def test_waiting_writer_blocks_new_readers(self):
        lock = RWLock()
        lock.acquire_read()
        t = threading.Thread(target=lock.acquire_write)
        t.start()
        for _ in range(100):  # wait until the writer queues up
            if lock.write_contentions:
                break
            time.sleep(0.01)
        got_read = []
        tr = threading.Thread(
            target=lambda: (lock.acquire_read(), got_read.append(True))
        )
        tr.start()
        time.sleep(0.05)
        assert not got_read  # writer preference: reader is held back
        lock.release_read()
        t.join(timeout=5)  # writer gets in first
        lock.release_write()
        tr.join(timeout=5)
        assert got_read


class TestScheduler:
    def test_concurrency_is_capped(self):
        scheduler = QueryScheduler(max_concurrent=2, queue_depth=16)
        active_high = []
        barrier = threading.Barrier(4, timeout=5)

        def work():
            barrier.wait()
            with scheduler.slot():
                active_high.append(scheduler.active)
                time.sleep(0.02)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert max(active_high) <= 2
        assert scheduler.peak_concurrency <= 2
        assert scheduler.admitted == 4
        assert scheduler.completed == 4

    def test_overload_rejected_fast(self):
        scheduler = QueryScheduler(max_concurrent=1, queue_depth=0)
        entered = threading.Event()
        release = threading.Event()

        def occupant():
            with scheduler.slot():
                entered.set()
                release.wait(timeout=5)

        t = threading.Thread(target=occupant)
        t.start()
        entered.wait(timeout=5)
        with pytest.raises(AdmissionError):
            with scheduler.slot():
                pass
        assert scheduler.rejected == 1
        release.set()
        t.join(timeout=5)


class TestServiceLifecycle:
    def test_sessions_are_independent_bookkeepers(self, small_csv):
        path, schema = small_csv
        with PostgresRawService() as service:
            service.register_csv("t", path, schema)
            s1 = service.session()
            s2 = service.session()
            assert s1.session_id != s2.session_id
            r = s1.query("SELECT a0 FROM t WHERE a1 < 500000")
            s1.query("SELECT a1 FROM t WHERE a0 < 0")
            assert s1.queries_issued == 2
            assert s1.rows_returned == len(r)
            assert s2.queries_issued == 0
            assert s1.total_seconds > 0

    def test_closed_service_refuses_work(self, small_csv):
        path, schema = small_csv
        service = PostgresRawService()
        service.register_csv("t", path, schema)
        session = service.session()
        service.close()
        service.close()  # idempotent
        with pytest.raises(ServiceError):
            session.query("SELECT a0 FROM t")
        with pytest.raises(ServiceError):
            service.session()

    def test_engine_is_thin_wrapper_with_context_manager(self, small_csv):
        path, schema = small_csv
        with PostgresRaw() as engine:
            engine.register_csv("t", path, schema)
            assert engine.table_names() == ["t"]
            assert engine.service.table_state("t") is engine.table_state("t")
            result = engine.query("SELECT a0 FROM t WHERE a0 >= 0")
            assert len(result) == 5_000
        with pytest.raises(ServiceError):
            engine.query("SELECT a0 FROM t")

    def test_drop_table_unknown_raises_catalog_error(self):
        engine = PostgresRaw()
        with pytest.raises(CatalogError):
            engine.drop_table("nope")

    def test_lock_stats_visible_per_table(self, small_csv):
        path, schema = small_csv
        with PostgresRawService() as service:
            service.register_csv("t", path, schema)
            session = service.session()
            session.query("SELECT a0 FROM t WHERE a0 >= 0")
            stats = service.lock_stats()
            assert set(stats) == {"t"}
            assert stats["t"]["write_acquisitions"] >= 1


class TestMonitorPanels:
    def test_governor_and_concurrency_panels_render(self, small_csv):
        from repro.monitor import (
            governor_report,
            render_concurrency_panel,
            render_governor_panel,
        )

        path, schema = small_csv
        config = PostgresRawConfig(memory_budget=4 * 1024 * 1024)
        with PostgresRawService(config) as service:
            service.register_csv("t", path, schema)
            session = service.session()
            session.query("SELECT a0, a1 FROM t WHERE a2 < 500000")

            report = governor_report(service)
            assert report["stats"]["used_bytes"] > 0
            kinds = {(r["table"], r["kind"]) for r in report["residency"]}
            assert kinds == {("t", "map"), ("t", "cache")}

            text = render_governor_panel(service)
            assert "global budget" in text and "t/map" in text
            text = render_concurrency_panel(service)
            assert "admitted: 1" in text and "t" in text

    def test_panels_work_without_governor(self, small_csv):
        from repro.monitor import governor_report, render_governor_panel

        path, schema = small_csv
        with PostgresRawService() as service:
            service.register_csv("t", path, schema)
            service.session().query("SELECT a0 FROM t WHERE a0 >= 0")
            report = governor_report(service)
            assert report["stats"] is None
            assert any(r["nbytes"] for r in report["residency"])
            assert "silos" in render_governor_panel(service)


class TestPoolRecycling:
    def test_pool_survives_across_queries(self, small_csv, tmp_path):
        path, schema = small_csv
        config = PostgresRawConfig(
            scan_workers=2, parallel_chunk_bytes=4 * 1024
        )
        with PostgresRaw(config) as engine:
            engine.register_csv("t", path, schema)
            engine.query("SELECT a0, a5 FROM t WHERE a1 >= 0")
            pool = engine.service._scan_pool()
            assert pool is not None
            first_dispatches = pool.dispatches
            assert first_dispatches >= 1
            assert pool.alive  # executor recycled, not torn down
            # Force a second parallel scan (append-free second table).
            import shutil

            path2 = tmp_path / "t2.csv"
            shutil.copy(path, path2)
            engine.register_csv("t2", path2, schema)
            engine.query("SELECT a0, a5 FROM t2 WHERE a1 >= 0")
            assert engine.service._scan_pool() is pool
            assert pool.dispatches > first_dispatches
        assert not pool.alive  # engine close shuts the pool down

    def test_serial_config_builds_no_pool(self, small_csv):
        path, schema = small_csv
        with PostgresRaw() as engine:
            engine.register_csv("t", path, schema)
            engine.query("SELECT a0 FROM t WHERE a0 >= 0")
            assert engine.service._scan_pool() is None
