"""Unit tests for selectivity estimation and join ordering."""

import numpy as np
import pytest

from repro.batch import ColumnVector
from repro.core.stats import StatisticsStore
from repro.datatypes import DataType
from repro.errors import PlanningError
from repro.sql.optimizer import (
    JoinEdge,
    Optimizer,
    estimate_scan_rows,
    estimate_selectivity,
)
from repro.sql.ast import ColumnRef
from repro.sql.parser import parse_select


def _predicate(fragment):
    return parse_select(f"SELECT 1 FROM t WHERE {fragment}").where


@pytest.fixture
def uniform_stats():
    """Statistics over x ~ uniform{0..999}, s in {apple..}, 10% nulls in n."""
    store = StatisticsStore(sample_size=2048)
    rng = np.random.default_rng(0)
    store.observe(
        "x",
        ColumnVector(
            DataType.INTEGER,
            np.arange(1000, dtype=np.int64),
            np.zeros(1000, dtype=np.bool_),
        ),
    )
    store.observe(
        "s",
        ColumnVector.from_pylist(
            DataType.TEXT,
            ["apple", "apricot", "banana", "cherry"] * 100,
        ),
    )
    nulls = rng.random(1000) < 0.1
    store.observe(
        "n",
        ColumnVector(
            DataType.INTEGER,
            np.arange(1000, dtype=np.int64),
            nulls,
        ),
    )
    store.set_row_estimate(1000)
    return store


class TestSelectivity:
    def test_none_predicate_is_one(self, uniform_stats):
        assert estimate_selectivity(None, uniform_stats) == 1.0

    def test_range_estimates_track_truth(self, uniform_stats):
        sel = estimate_selectivity(_predicate("x < 500"), uniform_stats)
        assert 0.4 < sel < 0.6
        sel = estimate_selectivity(_predicate("x >= 900"), uniform_stats)
        assert 0.05 < sel < 0.2

    def test_between(self, uniform_stats):
        sel = estimate_selectivity(
            _predicate("x BETWEEN 100 AND 199"), uniform_stats
        )
        assert 0.05 < sel < 0.2

    def test_equality_uses_distinct_count(self, uniform_stats):
        sel = estimate_selectivity(_predicate("x = 5"), uniform_stats)
        assert sel < 0.05
        sel = estimate_selectivity(_predicate("s = 'apple'"), uniform_stats)
        assert 0.15 < sel < 0.4  # one of four values

    def test_conjunction_multiplies(self, uniform_stats):
        one = estimate_selectivity(_predicate("x < 500"), uniform_stats)
        both = estimate_selectivity(
            _predicate("x < 500 AND x >= 100"), uniform_stats
        )
        assert both < one

    def test_disjunction_caps_at_one(self, uniform_stats):
        sel = estimate_selectivity(
            _predicate("x < 900 OR x >= 100"), uniform_stats
        )
        assert sel <= 1.0

    def test_negation_complements(self, uniform_stats):
        pos = estimate_selectivity(_predicate("x < 300"), uniform_stats)
        neg = estimate_selectivity(_predicate("NOT x < 300"), uniform_stats)
        assert neg == pytest.approx(1.0 - pos, abs=0.05)

    def test_is_null_uses_null_fraction(self, uniform_stats):
        sel = estimate_selectivity(_predicate("n IS NULL"), uniform_stats)
        assert 0.05 < sel < 0.15
        sel = estimate_selectivity(_predicate("n IS NOT NULL"), uniform_stats)
        assert 0.85 < sel < 0.95

    def test_like_prefix(self, uniform_stats):
        sel = estimate_selectivity(
            _predicate("s LIKE 'ap%'"), uniform_stats
        )
        assert 0.3 < sel < 0.7  # apple + apricot = half

    def test_in_list_sums(self, uniform_stats):
        single = estimate_selectivity(_predicate("x IN (1)"), uniform_stats)
        triple = estimate_selectivity(
            _predicate("x IN (1, 2, 3)"), uniform_stats
        )
        assert triple >= single

    def test_defaults_without_statistics(self):
        sel = estimate_selectivity(_predicate("x = 5"), None)
        assert 0 < sel < 0.05
        sel = estimate_selectivity(_predicate("x < 5"), None)
        assert sel == pytest.approx(1 / 3, abs=0.01)

    def test_never_zero_never_above_one(self, uniform_stats):
        sel = estimate_selectivity(
            _predicate("x = 12345678"), uniform_stats
        )
        assert 0 < sel <= 1.0


class TestScanRows:
    def test_uses_row_estimate(self, uniform_stats):
        rows = estimate_scan_rows(uniform_stats, None)
        assert rows == 1000
        rows = estimate_scan_rows(uniform_stats, _predicate("x < 100"))
        assert 30 < rows < 200

    def test_default_without_stats(self):
        assert estimate_scan_rows(None, None) == 100_000


class TestJoinOrdering:
    def _edges(self, *pairs):
        return [
            JoinEdge(a, ColumnRef("k", a), b, ColumnRef("k", b))
            for a, b in pairs
        ]

    def test_starts_from_smallest(self):
        order = Optimizer().order_joins(
            ["big", "small", "mid"],
            {"big": 10_000, "small": 10, "mid": 500},
            self._edges(("big", "small"), ("big", "mid")),
        )
        assert order[0] == "small"

    def test_respects_connectivity(self):
        # tiny is smallest overall but only reachable through mid.
        order = Optimizer().order_joins(
            ["a", "mid", "tiny"],
            {"a": 50, "mid": 500, "tiny": 5},
            self._edges(("a", "mid"), ("mid", "tiny")),
        )
        assert order == ["tiny", "mid", "a"]

    def test_disconnected_raises(self):
        with pytest.raises(PlanningError, match="cross join"):
            Optimizer().order_joins(
                ["a", "b"], {"a": 1, "b": 2}, []
            )

    def test_single_table(self):
        assert Optimizer().order_joins(["only"], {"only": 5}, []) == ["only"]

    def test_deterministic_tiebreak(self):
        order1 = Optimizer().order_joins(
            ["b", "a"], {"a": 100, "b": 100}, self._edges(("a", "b"))
        )
        order2 = Optimizer().order_joins(
            ["a", "b"], {"a": 100, "b": 100}, self._edges(("b", "a"))
        )
        assert order1 == order2 == ["a", "b"]
