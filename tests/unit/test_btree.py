"""Unit tests for the B+-tree index."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage.btree import BPlusTree


class TestBulkBuild:
    def test_empty(self):
        tree = BPlusTree.bulk_build([])
        assert tree.num_keys == 0
        assert tree.search_eq(5).tolist() == []
        tree.validate()

    def test_eq_lookup(self):
        keys = [5, 3, 8, 3, 1]
        tree = BPlusTree.bulk_build(keys)
        assert tree.search_eq(3).tolist() == [1, 3]
        assert tree.search_eq(8).tolist() == [2]
        assert tree.search_eq(99).tolist() == []
        tree.validate()

    def test_none_keys_skipped(self):
        tree = BPlusTree.bulk_build([1, None, 2])
        assert tree.num_entries == 2
        assert tree.search_eq(None).tolist() == []

    def test_large_build_multi_level(self):
        keys = list(range(10_000))
        tree = BPlusTree.bulk_build(keys, order=8)
        assert tree.height > 2
        tree.validate()
        assert tree.search_eq(7777).tolist() == [7777]

    def test_string_keys(self):
        tree = BPlusTree.bulk_build(["pear", "apple", "fig"])
        assert tree.search_eq("apple").tolist() == [1]
        assert tree.search_range("b", "g").tolist() == [2]

    def test_order_validation(self):
        with pytest.raises(StorageError):
            BPlusTree(order=2)


class TestRangeSearch:
    def _tree(self):
        rng = np.random.default_rng(7)
        self.keys = rng.integers(0, 1000, 500).tolist()
        return BPlusTree.bulk_build(self.keys, order=16)

    def _expected(self, lo, hi, li=True, hi_inc=True):
        out = []
        for i, k in enumerate(self.keys):
            if lo is not None and (k < lo or (k == lo and not li)):
                continue
            if hi is not None and (k > hi or (k == hi and not hi_inc)):
                continue
            out.append(i)
        return sorted(out)

    def test_closed_range(self):
        tree = self._tree()
        assert tree.search_range(100, 200).tolist() == self._expected(100, 200)

    def test_open_bounds(self):
        tree = self._tree()
        assert (
            tree.search_range(100, 200, low_inclusive=False).tolist()
            == self._expected(100, 200, li=False)
        )
        assert (
            tree.search_range(100, 200, high_inclusive=False).tolist()
            == self._expected(100, 200, hi_inc=False)
        )

    def test_unbounded_low(self):
        tree = self._tree()
        assert tree.search_range(None, 50).tolist() == self._expected(None, 50)

    def test_unbounded_high(self):
        tree = self._tree()
        assert tree.search_range(950, None).tolist() == self._expected(
            950, None
        )

    def test_full_scan(self):
        tree = self._tree()
        assert tree.search_range(None, None).tolist() == list(
            range(len(self.keys))
        )

    def test_empty_range(self):
        tree = self._tree()
        assert tree.search_range(2000, 3000).tolist() == []


class TestInsert:
    def test_incremental_inserts_match_bulk(self):
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 100, 300).tolist()
        bulk = BPlusTree.bulk_build(keys, order=8)
        incremental = BPlusTree(order=8)
        for i, k in enumerate(keys):
            incremental.insert(k, i)
        incremental.validate()
        for probe in range(0, 100, 7):
            assert (
                incremental.search_eq(probe).tolist()
                == bulk.search_eq(probe).tolist()
            )
        assert (
            incremental.search_range(10, 60).tolist()
            == bulk.search_range(10, 60).tolist()
        )

    def test_insert_none_ignored(self):
        tree = BPlusTree(order=4)
        tree.insert(None, 0)
        assert tree.num_entries == 0

    def test_insert_after_bulk(self):
        tree = BPlusTree.bulk_build(list(range(100)), order=8)
        tree.insert(50, 999)
        assert tree.search_eq(50).tolist() == [50, 999]
        tree.validate()
