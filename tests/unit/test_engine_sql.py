"""SQL semantics through the full PostgresRaw engine (single table).

The tiny_engine fixture has known contents:

    a=1  b=alpha  c=1.5
    a=2  b=beta   c=-2.25
    a=3  b=NULL   c=0.0
    a=N  b=delta  c=4.75
    a=5  b=eps    c=NULL
"""

import pytest

from repro.errors import CatalogError, PlanningError, SQLSyntaxError


class TestProjectionsAndFilters:
    def test_select_star(self, tiny_engine):
        eng, rows = tiny_engine
        result = eng.query("SELECT * FROM tiny")
        assert result.column_names == ["a", "b", "c"]
        assert list(result) == rows

    def test_projection_order(self, tiny_engine):
        eng, __ = tiny_engine
        result = eng.query("SELECT c, a FROM tiny")
        assert result.column_names == ["c", "a"]
        assert result.first() == (1.5, 1)

    def test_where_filters_nulls(self, tiny_engine):
        eng, __ = tiny_engine
        result = eng.query("SELECT a FROM tiny WHERE a > 1")
        assert result.column("a") == [2, 3, 5]

    def test_where_on_text(self, tiny_engine):
        eng, __ = tiny_engine
        result = eng.query("SELECT a FROM tiny WHERE b = 'beta'")
        assert result.column("a") == [2]

    def test_is_null_filter(self, tiny_engine):
        eng, __ = tiny_engine
        assert eng.query(
            "SELECT a FROM tiny WHERE b IS NULL"
        ).column("a") == [3]
        assert eng.query(
            "SELECT b FROM tiny WHERE a IS NULL"
        ).column("b") == ["delta"]

    def test_computed_projection(self, tiny_engine):
        eng, __ = tiny_engine
        result = eng.query("SELECT a * 10 AS tens FROM tiny WHERE a = 2")
        assert result.column("tens") == [20]

    def test_expression_only_select(self, tiny_engine):
        eng, __ = tiny_engine
        assert eng.query("SELECT 2 + 3 AS x").scalar() == 5

    def test_filter_no_matches(self, tiny_engine):
        eng, __ = tiny_engine
        assert len(eng.query("SELECT a FROM tiny WHERE a > 100")) == 0

    def test_between_and_in(self, tiny_engine):
        eng, __ = tiny_engine
        assert eng.query(
            "SELECT a FROM tiny WHERE a BETWEEN 2 AND 3"
        ).column("a") == [2, 3]
        assert eng.query(
            "SELECT a FROM tiny WHERE a IN (1, 5)"
        ).column("a") == [1, 5]

    def test_like(self, tiny_engine):
        eng, __ = tiny_engine
        assert eng.query(
            "SELECT b FROM tiny WHERE b LIKE '%a'"
        ).column("b") == ["alpha", "beta", "delta"]


class TestAggregation:
    def test_global_aggregates(self, tiny_engine):
        eng, __ = tiny_engine
        result = eng.query(
            "SELECT COUNT(*) AS n, COUNT(a) AS na, SUM(a) AS s, "
            "MIN(c) AS lo, MAX(c) AS hi FROM tiny"
        )
        assert result.first() == (5, 4, 11, -2.25, 4.75)

    def test_avg(self, tiny_engine):
        eng, __ = tiny_engine
        result = eng.query("SELECT AVG(a) AS m FROM tiny").scalar()
        assert result == pytest.approx(11 / 4)

    def test_group_by(self, tiny_engine):
        eng, __ = tiny_engine
        result = eng.query(
            "SELECT a > 2 AS big, COUNT(*) AS n FROM tiny "
            "WHERE a IS NOT NULL GROUP BY a > 2 ORDER BY n DESC"
        )
        assert list(result) == [(False, 2), (True, 2)]

    def test_having(self, tiny_engine):
        eng, __ = tiny_engine
        result = eng.query(
            "SELECT b, COUNT(*) AS n FROM tiny GROUP BY b "
            "HAVING COUNT(*) >= 1 ORDER BY b"
        )
        assert len(result) == 5  # each b distinct (incl. NULL group)

    def test_aggregate_of_expression(self, tiny_engine):
        eng, __ = tiny_engine
        assert (
            eng.query("SELECT SUM(a * 2) AS s FROM tiny").scalar() == 22
        )

    def test_expression_of_aggregate(self, tiny_engine):
        eng, __ = tiny_engine
        assert (
            eng.query("SELECT SUM(a) + COUNT(*) AS s FROM tiny").scalar()
            == 16
        )

    def test_non_grouped_column_rejected(self, tiny_engine):
        eng, __ = tiny_engine
        with pytest.raises(PlanningError):
            eng.query("SELECT a, COUNT(*) FROM tiny GROUP BY b")

    def test_having_without_group_rejected(self, tiny_engine):
        eng, __ = tiny_engine
        with pytest.raises(PlanningError):
            eng.query("SELECT a FROM tiny HAVING a > 1")

    def test_star_with_group_by_rejected(self, tiny_engine):
        eng, __ = tiny_engine
        with pytest.raises(PlanningError):
            eng.query("SELECT * FROM tiny GROUP BY a")

    def test_nested_aggregate_rejected(self, tiny_engine):
        eng, __ = tiny_engine
        with pytest.raises(PlanningError):
            eng.query("SELECT SUM(COUNT(*)) FROM tiny GROUP BY a")


class TestOrderingAndLimits:
    def test_order_by_column(self, tiny_engine):
        eng, __ = tiny_engine
        result = eng.query("SELECT c FROM tiny ORDER BY c")
        assert result.column("c") == [-2.25, 0.0, 1.5, 4.75, None]

    def test_order_by_alias(self, tiny_engine):
        eng, __ = tiny_engine
        result = eng.query("SELECT a * -1 AS neg FROM tiny ORDER BY neg")
        assert result.column("neg") == [-5, -3, -2, -1, None]

    def test_order_by_ordinal(self, tiny_engine):
        eng, __ = tiny_engine
        result = eng.query("SELECT b, a FROM tiny ORDER BY 2 DESC")
        assert result.column("a") == [None, 5, 3, 2, 1]

    def test_order_by_ordinal_out_of_range(self, tiny_engine):
        eng, __ = tiny_engine
        with pytest.raises(PlanningError):
            eng.query("SELECT a FROM tiny ORDER BY 3")

    def test_order_by_hidden_expression(self, tiny_engine):
        eng, __ = tiny_engine
        result = eng.query("SELECT b FROM tiny ORDER BY a DESC LIMIT 2")
        assert result.column_names == ["b"]
        assert result.column("b") == ["delta", "eps"]

    def test_limit_offset(self, tiny_engine):
        eng, __ = tiny_engine
        result = eng.query("SELECT a FROM tiny ORDER BY a LIMIT 2 OFFSET 1")
        assert result.column("a") == [2, 3]

    def test_distinct(self, tiny_engine):
        eng, __ = tiny_engine
        result = eng.query(
            "SELECT DISTINCT a > 2 AS big FROM tiny ORDER BY big"
        )
        assert result.column("big") == [False, True, None]


class TestNameResolution:
    def test_unknown_table(self, tiny_engine):
        eng, __ = tiny_engine
        with pytest.raises(CatalogError):
            eng.query("SELECT x FROM ghost")

    def test_unknown_column(self, tiny_engine):
        eng, __ = tiny_engine
        with pytest.raises(PlanningError):
            eng.query("SELECT nope FROM tiny")

    def test_alias_resolution(self, tiny_engine):
        eng, __ = tiny_engine
        result = eng.query("SELECT x.a FROM tiny x WHERE x.a = 1")
        assert result.column("a") == [1]

    def test_bad_alias(self, tiny_engine):
        eng, __ = tiny_engine
        with pytest.raises(PlanningError):
            eng.query("SELECT y.a FROM tiny x")

    def test_syntax_error_surfaces(self, tiny_engine):
        eng, __ = tiny_engine
        with pytest.raises(SQLSyntaxError):
            eng.query("SELEC a FROM tiny")

    def test_duplicate_alias(self, tiny_engine):
        eng, __ = tiny_engine
        with pytest.raises(PlanningError):
            eng.query("SELECT 1 FROM tiny x JOIN tiny x ON x.a = x.a")


class TestExplain:
    def test_explain_shows_plan_shape(self, tiny_engine):
        eng, __ = tiny_engine
        text = eng.explain(
            "SELECT a FROM tiny WHERE b = 'beta' ORDER BY a LIMIT 1"
        )
        assert "RawScan" in text
        assert "Limit" in text
        assert "Sort" in text
        assert "filter" in text

    def test_explain_pushdown(self, tiny_engine):
        eng, __ = tiny_engine
        text = eng.explain("SELECT a FROM tiny WHERE a > 1 AND b = 'x'")
        # Both conjuncts pushed into the scan: no standalone Filter node.
        assert "Filter" not in text.replace("filter:", "")
