"""Unit tests for line indexing, selective tokenization and extraction."""

import numpy as np
import pytest

from repro.errors import RawDataError
from repro.rawio.dialect import CsvDialect
from repro.rawio.tokenizer import (
    build_line_index,
    extract_field,
    extract_fields_between,
    field_end,
    tokenize_lines,
    tokenize_span,
)

PLAIN = CsvDialect(has_header=False)
QUOTED = CsvDialect(has_header=False, quote_char='"')


class TestLineIndex:
    def test_trailing_newline(self):
        bounds = build_line_index("ab\ncd\n")
        assert bounds.tolist() == [0, 3, 6]

    def test_no_trailing_newline(self):
        bounds = build_line_index("ab\ncd")
        assert bounds.tolist() == [0, 3, 6]

    def test_single_line(self):
        assert build_line_index("abc\n").tolist() == [0, 4]

    def test_empty_content(self):
        assert build_line_index("").tolist() == [0]

    def test_header_skipped(self):
        bounds = build_line_index("h1,h2\n1,2\n3,4\n", has_header=True)
        assert bounds.tolist() == [6, 10, 14]

    def test_header_only(self):
        bounds = build_line_index("h1,h2\n", has_header=True)
        assert len(bounds) - 1 == 0

    def test_non_ascii_content(self):
        content = "aé,b\ncd,e\n"
        bounds = build_line_index(content)
        # Offsets are character offsets into the decoded string.
        n_rows = len(bounds) - 1
        assert n_rows == 2
        line0 = content[bounds[0] : bounds[1] - 1]
        assert line0 == "aé,b"

    def test_line_extraction_roundtrip(self):
        content = "one,1\ntwo,2\nthree,3\n"
        bounds = build_line_index(content)
        lines = [
            content[bounds[i] : bounds[i + 1] - 1]
            for i in range(len(bounds) - 1)
        ]
        assert lines == ["one,1", "two,2", "three,3"]


class TestTokenizeLines:
    CONTENT = "10,20,30,40\n11,21,31,41\n12,22,32,42\n"

    def _bounds(self):
        return build_line_index(self.CONTENT)

    def test_full_tokenize(self):
        rows = tokenize_lines(self.CONTENT, self._bounds(), 0, 3, 3, 4, PLAIN)
        assert rows.texts_of(0) == ["10", "11", "12"]
        assert rows.texts_of(3) == ["40", "41", "42"]

    def test_selective_stops_early(self):
        rows = tokenize_lines(self.CONTENT, self._bounds(), 0, 3, 1, 4, PLAIN)
        assert rows.texts_of(1) == ["20", "21", "22"]
        assert rows.offsets.shape == (3, 3)  # attrs 0,1 + sentinel

    def test_offsets_point_at_field_starts(self):
        rows = tokenize_lines(self.CONTENT, self._bounds(), 0, 3, 3, 4, PLAIN)
        for r in range(3):
            for j in range(4):
                start = rows.offsets[r, j]
                assert self.CONTENT[start : start + 2] == rows.texts_of(j)[r]

    def test_sentinel_column(self):
        rows = tokenize_lines(self.CONTENT, self._bounds(), 0, 3, 1, 4, PLAIN)
        # Sentinel = start of attr 2.
        full = tokenize_lines(self.CONTENT, self._bounds(), 0, 3, 3, 4, PLAIN)
        assert rows.offsets[:, 2].tolist() == full.offsets[:, 2].tolist()

    def test_row_subrange(self):
        rows = tokenize_lines(self.CONTENT, self._bounds(), 1, 3, 0, 4, PLAIN)
        assert rows.texts_of(0) == ["11", "12"]

    def test_too_few_fields_raises(self):
        content = "1,2\n3\n"
        bounds = build_line_index(content)
        with pytest.raises(RawDataError):
            tokenize_lines(content, bounds, 0, 2, 1, 2, PLAIN)

    def test_too_many_fields_raises_on_full_split(self):
        content = "1,2,3\n"
        bounds = build_line_index(content)
        with pytest.raises(RawDataError):
            tokenize_lines(content, bounds, 0, 1, 1, 2, PLAIN)

    def test_attr_out_of_range(self):
        with pytest.raises(RawDataError):
            tokenize_lines(self.CONTENT, self._bounds(), 0, 3, 4, 4, PLAIN)

    def test_empty_fields(self):
        content = ",,x\n,y,\n"
        bounds = build_line_index(content)
        rows = tokenize_lines(content, bounds, 0, 2, 2, 3, PLAIN)
        assert rows.texts_of(0) == ["", ""]
        assert rows.texts_of(1) == ["", "y"]
        assert rows.texts_of(2) == ["x", ""]


class TestTokenizeSpan:
    CONTENT = "10,20,30,40\n11,21,31,41\n"

    def test_anchored_span_skips_prefix(self):
        bounds = build_line_index(self.CONTENT)
        full = tokenize_lines(self.CONTENT, bounds, 0, 2, 3, 4, PLAIN)
        anchors = full.offsets[:, 2]  # start of attr 2
        line_ends = bounds[1:] - 1
        span = tokenize_span(
            self.CONTENT, anchors, line_ends, 2, 3, 4, PLAIN
        )
        assert span.texts_of(2) == ["30", "31"]
        assert span.texts_of(3) == ["40", "41"]

    def test_bad_span_raises(self):
        bounds = build_line_index(self.CONTENT)
        with pytest.raises(RawDataError):
            tokenize_span(
                self.CONTENT, bounds[:-1], bounds[1:] - 1, 2, 1, 4, PLAIN
            )


class TestQuotedTokenizer:
    def test_quoted_fields_with_delimiters(self):
        content = '"a,b",2\n"c""d",4\n'
        bounds = build_line_index(content)
        rows = tokenize_lines(content, bounds, 0, 2, 1, 2, QUOTED)
        assert rows.texts_of(0) == ["a,b", 'c"d']
        assert rows.texts_of(1) == ["2", "4"]

    def test_mixed_quoted_unquoted(self):
        content = 'x,"y z",w\n'
        bounds = build_line_index(content)
        rows = tokenize_lines(content, bounds, 0, 1, 2, 3, QUOTED)
        assert rows.texts_of(1) == ["y z"]

    def test_unterminated_quote_raises(self):
        content = '"abc,2\n'
        bounds = build_line_index(content)
        with pytest.raises(RawDataError):
            tokenize_lines(content, bounds, 0, 1, 1, 2, QUOTED)

    def test_too_few_fields_raises(self):
        content = "1\n"
        bounds = build_line_index(content)
        with pytest.raises(RawDataError):
            tokenize_lines(content, bounds, 0, 1, 1, 2, QUOTED)

    def test_offsets_usable_for_extraction(self):
        content = '"a,b",xyz,3\n'
        bounds = build_line_index(content)
        rows = tokenize_lines(content, bounds, 0, 1, 2, 3, QUOTED)
        start = int(rows.offsets[0, 1])
        assert extract_field(content, start, len(content) - 1, QUOTED) == "xyz"
        quoted_start = int(rows.offsets[0, 0])
        assert (
            extract_field(content, quoted_start, len(content) - 1, QUOTED)
            == "a,b"
        )


class TestExtraction:
    CONTENT = "10,200,3\n40,500,6\n"

    def test_extract_field(self):
        bounds = build_line_index(self.CONTENT)
        assert extract_field(self.CONTENT, 3, 8, PLAIN) == "200"
        assert extract_field(self.CONTENT, 7, 8, PLAIN) == "3"  # last field

    def test_field_end(self):
        assert field_end(self.CONTENT, 3, 8, PLAIN) == 6
        assert field_end(self.CONTENT, 7, 8, PLAIN) == 8

    def test_extract_fields_between(self):
        starts = np.array([3, 12])
        next_starts = np.array([7, 16])
        texts = extract_fields_between(
            self.CONTENT, starts, next_starts, PLAIN
        )
        assert texts == ["200", "500"]

    def test_extract_fields_between_quoted(self):
        content = '"a,b",2\n'
        texts = extract_fields_between(
            content, np.array([0]), np.array([6]), QUOTED
        )
        assert texts == ["a,b"]
