"""Unit tests for workload generators and the race harness plumbing."""

import pytest

from repro import generate_csv, uniform_table_spec
from repro.errors import SchemaError
from repro.workload import (
    EpochWorkload,
    FriendlyRace,
    PostgresRawContestant,
    ExternalFilesContestant,
    QuerySpec,
    RandomSelectProjectWorkload,
    select_project_sql,
)
from repro.workload.race import LaneResult, RaceReport


@pytest.fixture(scope="module")
def table(tmp_path_factory):
    path = tmp_path_factory.mktemp("wl") / "t.csv"
    schema = generate_csv(path, uniform_table_spec(8, 1000, seed=41))
    return path, schema


class TestQuerySpec:
    def test_to_sql_with_filter(self):
        spec = QuerySpec("t", ("a", "b"), "c", 5, 10)
        assert spec.to_sql() == "SELECT a, b FROM t WHERE c BETWEEN 5 AND 10"

    def test_to_sql_no_filter(self):
        assert QuerySpec("t", ("a",)).to_sql() == "SELECT a FROM t"

    def test_to_sql_count_star(self):
        assert QuerySpec("t", ()).to_sql() == "SELECT COUNT(*) FROM t"

    def test_helper(self):
        assert select_project_sql("t", ["x"]) == "SELECT x FROM t"


class TestRandomWorkload:
    def test_deterministic(self, table):
        __, schema = table
        a = RandomSelectProjectWorkload("t", schema, seed=7).queries(5)
        b = RandomSelectProjectWorkload("t", schema, seed=7).queries(5)
        assert a == b

    def test_queries_reference_schema_columns(self, table):
        __, schema = table
        wl = RandomSelectProjectWorkload("t", schema, projection_width=3)
        for spec in wl.queries(10):
            assert all(schema.has_column(c) for c in spec.projection)
            assert schema.has_column(spec.filter_column)
            assert spec.low < spec.high

    def test_validation(self, table):
        __, schema = table
        with pytest.raises(SchemaError):
            RandomSelectProjectWorkload("t", schema, projection_width=0)
        with pytest.raises(SchemaError):
            RandomSelectProjectWorkload("t", schema, selectivity=2.0)

    def test_queries_run(self, table):
        path, schema = table
        from repro import PostgresRaw

        eng = PostgresRaw()
        eng.register_csv("t", path, schema)
        for spec in RandomSelectProjectWorkload("t", schema).queries(3):
            eng.query(spec.to_sql())  # should not raise


class TestEpochWorkload:
    def test_epoch_structure(self, table):
        __, schema = table
        wl = EpochWorkload(
            "t", schema, n_epochs=3, queries_per_epoch=4, window_width=3
        )
        epochs = wl.epochs()
        assert len(epochs) == 3
        for epoch in epochs:
            assert len(epoch.queries) == 4
            assert len(epoch.attributes) == 3
            for query in epoch.queries:
                assert set(query.projection) <= set(epoch.attributes)
                assert query.filter_column in epoch.attributes

    def test_windows_shift(self, table):
        __, schema = table
        workload = EpochWorkload("t", schema, n_epochs=2, window_width=3)
        epochs = workload.epochs()
        assert epochs[0].attributes != epochs[1].attributes

    def test_flat_queries_order(self, table):
        __, schema = table
        wl = EpochWorkload("t", schema, n_epochs=2, queries_per_epoch=3)
        flat = wl.flat_queries()
        assert [e for e, __ in flat] == [0, 0, 0, 1, 1, 1]

    def test_validation(self, table):
        __, schema = table
        with pytest.raises(SchemaError):
            EpochWorkload("t", schema, window_width=99)
        with pytest.raises(SchemaError):
            EpochWorkload(
                "t", schema, window_width=2, projection_width=3
            )


class TestLaneResult:
    def _lane(self):
        return LaneResult("X", 1.0, [0.5, 0.2, 0.3], [1, 2, 3])

    def test_totals(self):
        lane = self._lane()
        assert lane.total_seconds == pytest.approx(2.0)
        assert lane.data_to_query_seconds == pytest.approx(1.5)

    def test_answered_by(self):
        lane = self._lane()
        assert lane.answered_by(0.9) == 0
        assert lane.answered_by(1.5) == 1
        assert lane.answered_by(1.7) == 2
        assert lane.answered_by(10.0) == 3

    def test_cumulative(self):
        assert self._lane().cumulative_times() == pytest.approx(
            [1.5, 1.7, 2.0]
        )

    def test_report_winners(self):
        fast_start = LaneResult("A", 0.1, [0.2, 5.0], [1, 1])
        fast_total = LaneResult("B", 0.5, [0.1, 0.1], [1, 1])
        report = RaceReport([fast_start, fast_total])
        assert report.winner_first_answer() == "A"
        assert report.winner_total() == "B"
        table = report.as_table()
        assert {r["system"] for r in table} == {"A", "B"}
        assert "A" in report.render()


class TestFriendlyRaceHarness:
    def test_race_runs_and_agrees(self, table, tmp_path):
        path, schema = table
        race = FriendlyRace("t", path, schema)
        queries = RandomSelectProjectWorkload("t", schema, seed=3).queries(3)
        report = race.run(
            [PostgresRawContestant(), ExternalFilesContestant()], queries
        )
        assert len(report.lanes) == 2
        pg_raw = report.lanes[0]
        assert pg_raw.init_seconds < 0.05  # registration only
        assert len(pg_raw.query_seconds) == 3
        assert report.lanes[0].rows == report.lanes[1].rows

    def test_divergence_detected(self, table):
        path, schema = table

        class Liar:
            name = "liar"

            def initialize(self, *args):
                pass

            def run_query(self, sql):
                return -1

        race = FriendlyRace("t", path, schema)
        with pytest.raises(AssertionError):
            race.run(
                [PostgresRawContestant(), Liar()],
                ["SELECT COUNT(*) FROM t"],
            )
