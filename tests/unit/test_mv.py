"""Unit coverage of the adaptive materialized-aggregate cache.

Signature normalization and eligibility, the catalog's exact/partial
match ladder, silo eviction by benefit-per-byte, the analyzer's capture
decisions, the internal ``sum0`` aggregate and the EXPLAIN annotations.
"""

from __future__ import annotations

import pytest

from repro import PostgresRaw, PostgresRawConfig
from repro.batch import Batch, ColumnVector
from repro.catalog.schema import TableSchema
from repro.core.metrics import QueryMetrics
from repro.datatypes import DataType
from repro.errors import BudgetError, ServiceError
from repro.mv import (
    MaterializedAggregate,
    MVCatalog,
    QuerySignature,
    WorkloadAnalyzer,
    extract_signature,
)
from repro.rawio.writer import write_csv
from repro.sql.parser import parse_select
from repro.telemetry.registry import MetricsRegistry

SCHEMA = TableSchema.from_pairs(
    [("region", "text"), ("amount", "integer"), ("qty", "integer")]
)
ROWS = [(f"r{i % 4}", i, i % 7) for i in range(200)]


@pytest.fixture()
def engine(tmp_path):
    path = tmp_path / "t.csv"
    write_csv(path, ROWS, SCHEMA)
    with PostgresRaw(
        PostgresRawConfig(mv_auto=True, mv_min_repeats=2)
    ) as eng:
        eng.register_csv("t", path, SCHEMA)
        yield eng


def sig_of(engine, sql):
    stmt = parse_select(sql)
    planner = engine.service._planner(QueryMetrics(), [], mining=False)
    return planner.mv_signature(stmt)


# ----------------------------------------------------------------------
# Signatures.
# ----------------------------------------------------------------------


class TestSignature:
    def test_alias_and_order_insensitive(self, engine):
        a = sig_of(
            engine,
            "SELECT region, sum(amount) AS s FROM t "
            "WHERE qty > 1 AND amount < 100 GROUP BY region",
        )
        b = sig_of(
            engine,
            "SELECT sum(amount), region FROM t AS x "
            "WHERE amount < 100 AND qty > 1 GROUP BY region",
        )
        assert a is not None and a == b

    def test_having_limit_order_excluded(self, engine):
        a = sig_of(
            engine, "SELECT region, count(*) FROM t GROUP BY region"
        )
        b = sig_of(
            engine,
            "SELECT region, count(*) FROM t GROUP BY region "
            "HAVING count(*) > 1 ORDER BY region LIMIT 2",
        )
        assert a == b

    def test_ineligible_shapes(self, engine):
        for sql in (
            "SELECT region FROM t",  # no aggregate
            "SELECT * FROM t",  # star
            "SELECT count(DISTINCT region) FROM t",  # distinct agg
        ):
            assert sig_of(engine, sql) is None

    def test_count_star_key(self, engine):
        sig = sig_of(engine, "SELECT count(*) FROM t")
        assert sig.aggs == (("count", "*"),)
        assert sig.dims == ()

    def test_extract_requires_resolution_free_star(self):
        stmt = parse_select("SELECT count(*), sum(amount) FROM t")
        sig = extract_signature(stmt, "t")
        assert sig is not None
        assert ("sum", "amount") in sig.aggs


# ----------------------------------------------------------------------
# Catalog matching ladder.
# ----------------------------------------------------------------------


def make_entry(mv_id, sig, columns, dim_types=(), benefit=1.0, nbytes=100):
    cols = {}
    types = {}
    for dim, dtype in dim_types:
        cols[dim] = ColumnVector.from_pylist(dtype, ["x"])
        types[dim] = dtype
    for key, name in columns.items():
        cols[name] = ColumnVector.from_pylist(DataType.INTEGER, [1])
        types[name] = DataType.INTEGER
    return MaterializedAggregate(
        mv_id=mv_id,
        signature=sig,
        dims=sig.dims,
        columns=columns,
        batch=Batch(cols),
        types=types,
        nbytes=nbytes,
        generation=0,
        benefit_seconds=benefit,
        build_seconds=0.0,
        created_unix=0.0,
    )


def wide_sig():
    return QuerySignature(
        table="t",
        dims=("city", "region"),
        filters=(),
        aggs=(("count", "*"), ("sum", "amount")),
        filter_columns=(),
    )


class TestCatalogMatch:
    def setup_method(self):
        self.catalog = MVCatalog(MetricsRegistry(), max_total_bytes=10_000)
        self.wide = wide_sig()
        self.entry = make_entry(
            1,
            self.wide,
            {("count", "*"): "count:*", ("sum", "amount"): "sum:amount"},
            dim_types=[
                ("city", DataType.TEXT),
                ("region", DataType.TEXT),
            ],
        )
        assert self.catalog.install(self.entry)

    def test_exact_match(self):
        match = self.catalog.match(self.wide)
        assert match is not None and match.kind == "exact"

    def test_partial_subset_dims(self):
        narrower = QuerySignature(
            table="t",
            dims=("region",),
            filters=(),
            aggs=(("sum", "amount"),),
            filter_columns=(),
        )
        match = self.catalog.match(narrower)
        assert match is not None and match.kind == "partial"

    def test_partial_residual_filter_on_dim(self):
        filtered = QuerySignature(
            table="t",
            dims=("region",),
            filters=("(city = 'x')",),
            aggs=(("count", "*"),),
            filter_columns=((("(city = 'x')"), ("city",)),),
        )
        match = self.catalog.match(filtered)
        assert match is not None and match.kind == "partial"
        assert match.residual_filters == ("(city = 'x')",)

    def test_no_match_filter_on_non_dim(self):
        filtered = QuerySignature(
            table="t",
            dims=("region",),
            filters=("(amount > 1)",),
            aggs=(("count", "*"),),
            filter_columns=((("(amount > 1)"), ("amount",)),),
        )
        assert self.catalog.match(filtered) is None

    def test_no_match_superset_dims(self):
        wider = QuerySignature(
            table="t",
            dims=("city", "region", "zip"),
            filters=(),
            aggs=(("count", "*"),),
            filter_columns=(),
        )
        assert self.catalog.match(wider) is None

    def test_no_match_missing_aggregate(self):
        other = QuerySignature(
            table="t",
            dims=("region",),
            filters=(),
            aggs=(("min", "amount"),),
            filter_columns=(),
        )
        assert self.catalog.match(other) is None

    def test_avg_needs_both_components(self):
        avg = QuerySignature(
            table="t",
            dims=("region",),
            filters=(),
            aggs=(("avg", "amount"),),
            filter_columns=(),
        )
        assert self.catalog.match(avg) is None  # no count/sum of amount
        entry = make_entry(
            2,
            wide_sig(),
            {
                ("sum", "amount"): "sum:amount",
                ("count", "amount"): "count:amount",
            },
            dim_types=[
                ("city", DataType.TEXT),
                ("region", DataType.TEXT),
            ],
        )
        assert self.catalog.install(entry)
        match = self.catalog.match(avg)
        assert match is not None and match.kind == "partial"

    def test_invalidate_and_drop(self):
        assert self.catalog.invalidate_table("t") == 1
        assert self.catalog.match(self.wide) is None
        self.catalog.drop_table("t")
        assert self.catalog.entry_count() == 0


class TestSiloEviction:
    def test_evicts_lowest_benefit_per_byte(self):
        catalog = MVCatalog(MetricsRegistry(), max_total_bytes=250)
        base = wide_sig()
        cheap = QuerySignature(
            "t", ("a",), (), (("count", "*"),), ()
        )
        rich = QuerySignature(
            "t", ("b",), (), (("count", "*"),), ()
        )
        cols = {("count", "*"): "count:*"}
        low = make_entry(1, cheap, dict(cols), benefit=0.001, nbytes=100)
        high = make_entry(2, rich, dict(cols), benefit=10.0, nbytes=100)
        assert catalog.install(low)
        assert catalog.install(high)
        new = make_entry(3, base, dict(cols), benefit=1.0, nbytes=100)
        assert catalog.install(new)
        resident = {e.mv_id for e in catalog.entries()}
        assert resident == {2, 3}  # the low-benefit entry was evicted
        assert catalog.evictions == 1
        assert catalog.total_bytes() <= 250

    def test_oversized_entry_rejected(self):
        catalog = MVCatalog(MetricsRegistry(), max_total_bytes=50)
        entry = make_entry(
            1, wide_sig(), {("count", "*"): "count:*"}, nbytes=100
        )
        assert not catalog.install(entry)
        assert catalog.rejected == 1
        assert catalog.entry_count() == 0

    def test_replaces_same_signature(self):
        catalog = MVCatalog(MetricsRegistry(), max_total_bytes=10_000)
        sig = wide_sig()
        cols = {("count", "*"): "count:*"}
        assert catalog.install(make_entry(1, sig, dict(cols)))
        assert catalog.install(make_entry(2, sig, dict(cols)))
        assert [e.mv_id for e in catalog.entries()] == [2]


# ----------------------------------------------------------------------
# Analyzer.
# ----------------------------------------------------------------------


class TestAnalyzer:
    def test_auto_capture_after_min_repeats(self):
        analyzer = WorkloadAnalyzer(min_repeats=3, auto=True)
        sig = wide_sig()
        for expected in (False, False, True):
            analyzer.note_planned(sig)
            assert analyzer.should_capture(sig, False) is expected
        assert analyzer.should_capture(sig, True) is False

    def test_auto_off_never_captures(self):
        analyzer = WorkloadAnalyzer(min_repeats=1, auto=False)
        sig = wide_sig()
        analyzer.note_planned(sig)
        assert analyzer.should_capture(sig, False) is False

    def test_force_overrides_auto_off(self):
        analyzer = WorkloadAnalyzer(min_repeats=99, auto=False)
        sig = wide_sig()
        analyzer.force(sig)
        assert analyzer.is_forced(sig)
        assert analyzer.should_capture(sig, False) is True
        analyzer.unforce(sig)
        assert not analyzer.is_forced(sig)

    def test_suggestions_ranked_by_benefit_per_byte(self):
        analyzer = WorkloadAnalyzer(min_repeats=1, auto=True)
        hot = QuerySignature("t", ("a",), (), (("count", "*"),), ())
        cold = QuerySignature("t", ("b",), (), (("count", "*"),), ())
        for __ in range(5):
            analyzer.note_planned(hot)
            analyzer.note_completed(hot, None, 2.0)
        analyzer.note_planned(cold)
        analyzer.note_completed(cold, None, 0.001)
        rows = analyzer.suggestions()
        assert rows[0]["signature"] == hot.label()
        assert rows[0]["benefit_per_byte"] > rows[1]["benefit_per_byte"]

    def test_served_and_raw_buckets(self):
        analyzer = WorkloadAnalyzer(min_repeats=1, auto=True)
        sig = wide_sig()
        analyzer.note_completed(sig, None, 4.0)
        analyzer.note_completed(sig, "exact", 0.5)
        assert analyzer.observed_seconds(sig) == 4.0
        row = analyzer.suggestions()[0]
        assert row["raw_runs"] == 1 and row["served_runs"] == 1


# ----------------------------------------------------------------------
# sum0 + EXPLAIN + config knobs.
# ----------------------------------------------------------------------


def test_sum0_zero_over_empty_input():
    from repro.executor.operators import _Accumulator

    acc = _Accumulator("sum0", distinct=False)
    assert acc.result(DataType.INTEGER) == 0
    acc.update(3)
    acc.update(None)
    acc.update(4)
    assert acc.result(DataType.INTEGER) == 7


def test_explain_annotates_mv_decisions(engine):
    sql = "SELECT region, sum(amount) FROM t GROUP BY region"
    assert "raw fallback" in engine.explain(sql)
    engine.query(sql)
    engine.query(sql)  # second plan triggers auto capture
    text = engine.explain(sql)
    assert "MVScan [exact]" in text
    assert "raw fallback" not in text
    narrower = "SELECT sum(amount) FROM t"
    assert "MVScan [partial: re-agg over <global>]" in engine.explain(
        narrower
    )


def test_explain_does_not_mine(engine):
    sql = "SELECT region, min(qty) FROM t GROUP BY region"
    for __ in range(5):
        engine.explain(sql)
    engine.query(sql)
    engine.query(sql)
    # EXPLAINs did not count as repeats: 2 queries < would-be 7.
    assert engine.service.mv.analyzer.note_planned(sig_of(engine, sql)) == 3


def test_mv_config_validation():
    with pytest.raises(BudgetError):
        PostgresRawConfig(mv_min_repeats=0)
    with pytest.raises(BudgetError):
        PostgresRawConfig(mv_max_bytes_fraction=0.0)
    with pytest.raises(BudgetError):
        PostgresRawConfig(mv_max_bytes_fraction=1.5)


def test_build_mv_rejects_ineligible(engine):
    with pytest.raises(ServiceError):
        engine.build_mv("SELECT region FROM t")


def test_mv_disabled_has_no_runtime(tmp_path):
    path = tmp_path / "t.csv"
    write_csv(path, ROWS, SCHEMA)
    with PostgresRaw(PostgresRawConfig(mv_enabled=False)) as eng:
        eng.register_csv("t", path, SCHEMA)
        assert eng.service.mv is None
        with pytest.raises(ServiceError):
            eng.build_mv("SELECT count(*) FROM t")
        sql = "SELECT region, count(*) FROM t GROUP BY region"
        assert "MVScan" not in eng.explain(sql)
        assert "-- mv:" not in eng.explain(sql)
