"""The global memory governor: one budget across all adaptive state.

Covers the arbitration rules in isolation (caches and positional maps
bound to one governor, no engine) and the service-level release path
(``drop_table`` returning bytes to the budget).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch import ColumnVector
from repro.core.cache import RawDataCache
from repro.core.positional_map import PositionalMap
from repro.datatypes import DataType
from repro.service import MemoryGovernor


def vector(n_rows: int) -> ColumnVector:
    return ColumnVector(
        DataType.INTEGER,
        np.arange(n_rows, dtype=np.int64),
        np.zeros(n_rows, dtype=np.bool_),
    )


def vector_bytes(n_rows: int) -> int:
    return vector(n_rows).nbytes()


def offsets(n_rows: int, n_attrs: int) -> np.ndarray:
    return np.arange(n_rows * n_attrs, dtype=np.int64).reshape(
        n_rows, n_attrs
    )


def governed_cache(governor: MemoryGovernor, table: str) -> RawDataCache:
    cache = RawDataCache(budget_bytes=0)  # silo budget moot once bound
    cache.bind_governor(governor)
    governor.register(cache, table, "cache")
    return cache


def governed_map(governor: MemoryGovernor, table: str) -> PositionalMap:
    pm = PositionalMap(budget_bytes=0)
    pm.bind_governor(governor)
    governor.register(pm, table, "map")
    return pm


class TestGovernorAccounting:
    def test_used_bytes_tracks_members(self):
        governor = MemoryGovernor(1 << 20)
        cache_a = governed_cache(governor, "a")
        pm_b = governed_map(governor, "b")
        assert governor.used_bytes == 0
        cache_a.put(0, vector(100), benefit_seconds=1.0)
        pm_b.install((0, 1), offsets(100, 2), benefit_seconds=1.0)
        assert governor.used_bytes == (
            cache_a.used_bytes + pm_b.used_bytes
        )
        assert governor.used_bytes <= governor.budget_bytes

    def test_budget_never_exceeded(self):
        budget = vector_bytes(100) * 3
        governor = MemoryGovernor(budget)
        cache = governed_cache(governor, "a")
        for attr in range(10):
            cache.put(attr, vector(100), benefit_seconds=float(attr))
            assert governor.used_bytes <= budget
        assert cache.evictions > 0

    def test_oversized_grant_rejected_without_eviction(self):
        governor = MemoryGovernor(vector_bytes(100))
        cache = governed_cache(governor, "a")
        assert cache.put(0, vector(50), benefit_seconds=5.0)
        before = governor.used_bytes
        assert not cache.put(1, vector(10_000), benefit_seconds=99.0)
        assert governor.used_bytes == before  # nothing was evicted for it
        assert governor.rejected_grants == 1
        assert cache.peek(0) is not None

    def test_line_bounds_stay_pinned(self):
        governor = MemoryGovernor(1 << 16)
        pm = governed_map(governor, "a")
        pm.set_line_bounds(np.arange(1000, dtype=np.int64))
        # The tuple-boundary backbone is not governed (matches the
        # silo-budget engine, which accounts it separately).
        assert governor.used_bytes == 0
        assert pm.line_index_bytes > 0


class TestEvictionOrdering:
    def test_lowest_benefit_per_byte_goes_first_across_tables(self):
        budget = vector_bytes(100) * 2
        governor = MemoryGovernor(budget)
        cache_a = governed_cache(governor, "a")
        cache_b = governed_cache(governor, "b")
        cache_a.put(0, vector(100), benefit_seconds=10.0)  # dense
        cache_b.put(0, vector(100), benefit_seconds=0.1)   # sparse
        # A third column forces one eviction: table B's sparse entry
        # must be the victim even though table A is the requester's peer.
        assert cache_a.put(1, vector(100), benefit_seconds=5.0)
        assert cache_a.peek(0) is not None
        assert cache_a.peek(1) is not None
        assert cache_b.peek(0) is None
        assert governor.cross_evictions == 1

    def test_map_chunks_and_cache_entries_share_one_currency(self):
        n = 100
        budget = vector_bytes(n) + offsets(n, 2).nbytes
        governor = MemoryGovernor(budget)
        cache = governed_cache(governor, "a")
        pm = governed_map(governor, "b")
        pm.install((0, 1), offsets(n, 2), benefit_seconds=0.01)  # sparse map
        cache.put(0, vector(n), benefit_seconds=10.0)            # dense cache
        # New dense chunk: the governor should sacrifice the *sparse
        # chunk*, not the dense cache entry, despite kind differences.
        installed = pm.install((2, 3), offsets(n, 2), benefit_seconds=8.0)
        assert installed is not None
        assert cache.peek(0) is not None
        assert pm.find_exact((0, 1)) is None
        assert pm.find_exact((2, 3)) is not None

    def test_recency_breaks_density_ties(self):
        budget = vector_bytes(100) * 2
        governor = MemoryGovernor(budget)
        cache = governed_cache(governor, "a")
        cache.put(0, vector(100), benefit_seconds=1.0)
        cache.tick()
        cache.put(1, vector(100), benefit_seconds=1.0)
        cache.tick()
        cache.put(2, vector(100), benefit_seconds=1.0)
        # Equal densities: the least recently installed/used entry loses.
        assert cache.peek(0) is None
        assert cache.peek(1) is not None
        assert cache.peek(2) is not None

    def test_protected_tokens_survive(self):
        budget = vector_bytes(100) * 2
        governor = MemoryGovernor(budget)
        cache = governed_cache(governor, "a")
        cache.put(0, vector(100), benefit_seconds=0.0)  # worst density
        cache.put(1, vector(100), benefit_seconds=9.0)
        # Requesting room while protecting attr 0 must evict attr 1
        # (the only unprotected candidate), not the protected one.
        assert cache.put(
            2, vector(100), protected={0}, benefit_seconds=1.0
        )
        assert cache.peek(0) is not None
        assert cache.peek(1) is None


class TestRelease:
    def test_unregister_table_returns_bytes(self):
        governor = MemoryGovernor(1 << 20)
        cache_a = governed_cache(governor, "a")
        cache_b = governed_cache(governor, "b")
        cache_a.put(0, vector(200), benefit_seconds=1.0)
        cache_b.put(0, vector(100), benefit_seconds=1.0)
        freed = governor.unregister_table("a")
        assert freed == vector_bytes(200)
        assert governor.used_bytes == vector_bytes(100)
        assert governor.released_bytes == freed
        assert all(r["table"] == "b" for r in governor.residency())

    def test_drop_table_releases_and_raises_catalog_error(
        self, small_csv
    ):
        from repro import PostgresRawConfig, PostgresRawService
        from repro.errors import CatalogError

        path, schema = small_csv
        service = PostgresRawService(
            PostgresRawConfig(memory_budget=64 * 1024 * 1024)
        )
        service.register_csv("t", path, schema)
        session = service.session()
        session.query("SELECT a0, a1 FROM t WHERE a2 < 500000")
        assert service.governor.used_bytes > 0
        service.drop_table("t")
        assert service.governor.used_bytes == 0
        with pytest.raises(CatalogError):
            service.drop_table("t")
        with pytest.raises(CatalogError):
            service.table_state("t")
        # The name is free again.
        service.register_csv("t", path, schema)
        assert len(session.query("SELECT a0 FROM t WHERE a0 >= 0")) > 0
        service.close()


class TestBenefitDecay:
    def test_stale_expensive_structure_loses_to_recent_useful_one(self):
        budget = vector_bytes(100) * 2
        governor = MemoryGovernor(budget, benefit_half_life_s=1.0)
        cache = governed_cache(governor, "a")
        # Attr 0 measured a huge benefit... a long time ago.
        cache.put(0, vector(100), benefit_seconds=100.0)
        cache.tick()
        cache.put(1, vector(100), benefit_seconds=1.0)
        # Age attr 0 by many half-lives: its effective benefit-per-byte
        # decays below the recently-useful attr 1.
        cache.peek(0).last_used_ts -= 1000.0
        cache.tick()
        assert cache.put(2, vector(100), benefit_seconds=1.0)
        assert cache.peek(0) is None  # the cold, stale entry lost
        assert cache.peek(1) is not None
        assert cache.peek(2) is not None

    def test_without_half_life_measured_benefit_wins_regardless_of_age(self):
        budget = vector_bytes(100) * 2
        governor = MemoryGovernor(budget)  # no decay configured
        cache = governed_cache(governor, "a")
        cache.put(0, vector(100), benefit_seconds=100.0)
        cache.tick()
        cache.put(1, vector(100), benefit_seconds=1.0)
        cache.peek(0).last_used_ts -= 1000.0
        cache.tick()
        assert cache.put(2, vector(100), benefit_seconds=1.0)
        # Undecayed: the high measured benefit keeps attr 0 resident and
        # the low-benefit attr 1 is the victim.
        assert cache.peek(0) is not None
        assert cache.peek(1) is None

    def test_decay_spans_structure_kinds(self):
        n = 100
        budget = vector_bytes(n) + int(offsets(n, 2).nbytes)
        governor = MemoryGovernor(budget, benefit_half_life_s=1.0)
        cache = governed_cache(governor, "a")
        pm = governed_map(governor, "b")
        # A stale-but-expensive map chunk vs a fresh cheap cache entry.
        pm.install((0, 1), offsets(n, 2), benefit_seconds=50.0)
        pm.chunks()[0].last_used_ts -= 1000.0
        cache.put(0, vector(n), benefit_seconds=0.5)
        # New bytes need room: the decayed chunk is the cheapest loss.
        assert cache.put(1, vector(n), benefit_seconds=0.5)
        assert pm.chunk_count == 0
        assert cache.peek(0) is not None and cache.peek(1) is not None
