"""Behavioural tests for the parallel chunked raw scan (repro.parallel):
routing, serial-equivalence of results and adaptive structures, metrics
accounting, and the boundary edge cases found in the raw-scan audit."""

import numpy as np
import pytest

from repro import (
    PostgresRaw,
    PostgresRawConfig,
    generate_csv,
    uniform_table_spec,
)
from repro.catalog.schema import TableSchema
from repro.core.metrics import QueryMetrics
from repro.monitor.breakdown import render_worker_breakdown
from repro.rawio.dialect import CsvDialect
from repro.rawio.writer import append_csv_rows

N_ROWS = 6000
PARALLEL = PostgresRawConfig(scan_workers=4, parallel_chunk_bytes=16 * 1024)


@pytest.fixture
def raw_file(tmp_path):
    path = tmp_path / "t.csv"
    schema = generate_csv(path, uniform_table_spec(6, N_ROWS, seed=11))
    return path, schema


def _engines(path, schema, parallel_config=PARALLEL):
    serial = PostgresRaw()
    serial.register_csv("t", path, schema)
    parallel = PostgresRaw(parallel_config)
    parallel.register_csv("t", path, schema)
    return serial, parallel


def _assert_same_state(serial, parallel, check_cache=True):
    # check_cache=False for process-backend *cold* scans: selective
    # tuple formation decides per chunk-local batch there, so which
    # projection columns end up cached can differ from serial (results,
    # bounds and the positional map never do).  The default thread
    # backend is exact on everything.
    spm = serial.table_state("t").positional_map
    ppm = parallel.table_state("t").positional_map
    assert np.array_equal(spm.line_bounds, ppm.line_bounds)
    schunks = sorted(spm.chunks(), key=lambda c: c.attrs)
    pchunks = sorted(ppm.chunks(), key=lambda c: c.attrs)
    assert [(c.attrs, c.rows) for c in schunks] == [
        (c.attrs, c.rows) for c in pchunks
    ]
    for sc, pc in zip(schunks, pchunks):
        assert np.array_equal(sc.offsets, pc.offsets)
    if check_cache:
        assert serial.table_state("t").cache.describe() == (
            parallel.table_state("t").cache.describe()
        )


class TestColdParallelScan:
    def test_cold_scan_routes_through_pool(self, raw_file):
        path, schema = raw_file
        __, parallel = _engines(path, schema)
        result = parallel.query("SELECT a1 FROM t")
        assert result.metrics.parallel_scans == 1
        assert result.metrics.parallel_chunks > 1
        assert len(result.metrics.worker_breakdowns) == (
            result.metrics.parallel_chunks
        )

    def test_results_and_structures_match_serial(self, raw_file):
        path, schema = raw_file
        serial, parallel = _engines(path, schema)
        sql = "SELECT a1, a4 FROM t WHERE a2 < 500000"
        assert serial.query(sql).rows == parallel.query(sql).rows
        _assert_same_state(serial, parallel)

    def test_projection_only_query_matches(self, raw_file):
        path, schema = raw_file
        serial, parallel = _engines(path, schema)
        sql = "SELECT a5 FROM t"
        assert serial.query(sql).rows == parallel.query(sql).rows
        _assert_same_state(serial, parallel)

    def test_warm_query_goes_serial_again(self, raw_file):
        path, schema = raw_file
        __, parallel = _engines(path, schema)
        parallel.query("SELECT a1 FROM t")
        repeat = parallel.query("SELECT a1 FROM t")
        assert repeat.metrics.parallel_scans == 0
        assert repeat.metrics.worker_breakdowns == []

    def test_small_file_stays_serial(self, tmp_path):
        path = tmp_path / "small.csv"
        schema = generate_csv(path, uniform_table_spec(4, 50, seed=2))
        engine = PostgresRaw(PARALLEL)
        engine.register_csv("t", path, schema)
        result = engine.query("SELECT a0 FROM t")
        assert result.metrics.parallel_scans == 0

    def test_process_backend_matches_serial(self, raw_file):
        path, schema = raw_file
        config = PARALLEL.with_overrides(parallel_backend="process")
        serial, parallel = _engines(path, schema, config)
        sql = "SELECT a0, a3 FROM t WHERE a1 < 300000"
        assert serial.query(sql).rows == parallel.query(sql).rows
        _assert_same_state(serial, parallel, check_cache=False)

    def test_count_star_matches(self, raw_file):
        path, schema = raw_file
        serial, parallel = _engines(path, schema)
        sql = "SELECT COUNT(*) FROM t WHERE a3 < 250000"
        assert serial.query(sql).rows == parallel.query(sql).rows

    def test_plain_count_star_does_not_redispatch(self, raw_file):
        # A zero-attribute scan counts tuple boundaries the line index
        # already knows; repeats must not fan out the pool again.
        path, schema = raw_file
        __, parallel = _engines(path, schema)
        parallel.query("SELECT COUNT(*) FROM t")
        repeat = parallel.query("SELECT COUNT(*) FROM t")
        assert repeat.metrics.parallel_scans == 0

    def test_predicate_cache_content_matches_serial(self, tmp_path):
        # Regression: a chunk whose local batch happens to be fully
        # qualifying must not cache projection columns the serial scan
        # would skip (thread backend is exact; cuts are batch-aligned).
        path = tmp_path / "t.csv"
        schema = TableSchema.from_pairs(
            [("a", "integer"), ("b", "integer"), ("c", "integer")]
        )
        lines = ["a,b,c"] + [f"{i},{i},{i % 100}" for i in range(9000)]
        path.write_text("\n".join(lines) + "\n")
        serial, parallel = _engines(
            path, schema, PARALLEL.with_overrides(parallel_chunk_bytes=4096)
        )
        sql = "SELECT a FROM t WHERE c < 50"
        assert serial.query(sql).rows == parallel.query(sql).rows
        _assert_same_state(serial, parallel)


class TestTailParallelScan:
    def test_append_tail_goes_parallel_and_matches(self, raw_file):
        path, schema = raw_file
        serial, parallel = _engines(path, schema)
        sql = "SELECT a1, a3 FROM t WHERE a2 < 400000"
        serial.query(sql), parallel.query(sql)
        rng = np.random.default_rng(5)
        rows = [
            tuple(int(v) for v in rng.integers(0, 999999, 6))
            for _ in range(3 * N_ROWS)
        ]
        append_csv_rows(path, rows, schema)
        s2, p2 = serial.query(sql), parallel.query(sql)
        assert s2.rows == p2.rows
        assert p2.metrics.parallel_scans == 1
        _assert_same_state(serial, parallel)

    def test_tail_statistics_match_serial_exactly(self, raw_file):
        # Tail chunks are cut at global batch_size multiples, so even
        # the reservoir sampler sees identical batches.
        path, schema = raw_file
        serial, parallel = _engines(path, schema)
        sql = "SELECT a1 FROM t"
        serial.query(sql), parallel.query(sql)
        rows = [(i, i, i, i, i, i) for i in range(3 * N_ROWS)]
        append_csv_rows(path, rows, schema)
        serial.query("SELECT a4 FROM t"), parallel.query("SELECT a4 FROM t")
        s = serial.table_state("t").statistics.get("a4")
        p = parallel.table_state("t").statistics.get("a4")
        assert s.rows_seen == p.rows_seen
        assert s.sample == p.sample

    def test_process_backend_tail_matches(self, raw_file):
        path, schema = raw_file
        config = PARALLEL.with_overrides(parallel_backend="process")
        serial, parallel = _engines(path, schema, config)
        serial.query("SELECT a1 FROM t"), parallel.query("SELECT a1 FROM t")
        rows = [(i, i, i, i, i, i) for i in range(2 * N_ROWS)]
        append_csv_rows(path, rows, schema)
        sql = "SELECT a1, a2 FROM t WHERE a1 < 400000"
        assert serial.query(sql).rows == parallel.query(sql).rows
        _assert_same_state(serial, parallel)

    def test_rewrite_invalidates_then_cold_parallel(self, raw_file):
        path, schema = raw_file
        serial, parallel = _engines(path, schema)
        sql = "SELECT a0, a2 FROM t WHERE a1 < 600000"
        serial.query(sql), parallel.query(sql)
        # Rewrite the file in place: everything must be rebuilt.
        schema2 = generate_csv(path, uniform_table_spec(6, N_ROWS, seed=99))
        assert len(schema2) == 6
        s2, p2 = serial.query(sql), parallel.query(sql)
        assert s2.rows == p2.rows
        assert p2.metrics.parallel_scans == 1  # cold again after rewrite
        _assert_same_state(serial, parallel)

    def test_anchor_recency_matches_serial(self, raw_file):
        # LRU metadata parity: a tail scan must refresh recency only on
        # anchors it actually jumped from (attr > 0), exactly like the
        # serial scan — otherwise eviction under budget pressure would
        # diverge between the two paths.
        path, schema = raw_file
        serial, parallel = _engines(path, schema)
        rng = np.random.default_rng(3)
        for sql in ("SELECT a4 FROM t", None, "SELECT a0 FROM t",
                    "SELECT a3 FROM t"):
            if sql is None:
                rows = [
                    tuple(int(v) for v in rng.integers(0, 999999, 6))
                    for _ in range(2 * N_ROWS)
                ]
                append_csv_rows(path, rows, schema)
                continue
            serial.query(sql), parallel.query(sql)
        s_used = {
            c.attrs: c.last_used
            for c in serial.table_state("t").positional_map.chunks()
        }
        p_used = {
            c.attrs: c.last_used
            for c in parallel.table_state("t").positional_map.chunks()
        }
        assert s_used == p_used

    def test_anchored_tail_tokenizes_from_anchor(self, raw_file):
        # Map knows a0..a2 (from SELECT a1); the appended tail then
        # needs a5: workers must anchor at a3 exactly like the serial
        # scan, so both install the same (3..5)-span chunk.
        path, schema = raw_file
        serial, parallel = _engines(path, schema)
        serial.query("SELECT a2 FROM t"), parallel.query("SELECT a2 FROM t")
        serial.query("SELECT a5 FROM t"), parallel.query("SELECT a5 FROM t")
        _assert_same_state(serial, parallel)


class TestParallelMetrics:
    def test_worker_buckets_and_stack_add_up(self, raw_file):
        path, schema = raw_file
        __, parallel = _engines(path, schema)
        metrics = parallel.query("SELECT a1, a2 FROM t").metrics
        assert metrics.parallel_scan_seconds > 0
        # Figure 3 invariant: the six buckets still sum to total.
        assert metrics.accounted_seconds() == pytest.approx(
            metrics.total_seconds, abs=1e-6
        )
        for breakdown in metrics.worker_breakdowns:
            assert breakdown["rows"] > 0
            assert breakdown["tokenizing"] >= 0

    def test_worker_panel_renders(self, raw_file):
        path, schema = raw_file
        __, parallel = _engines(path, schema)
        metrics = parallel.query("SELECT a1 FROM t").metrics
        text = render_worker_breakdown(metrics)
        assert "chunk 0" in text
        assert "serial" in render_worker_breakdown(QueryMetrics())

    def test_merge_carries_parallel_counters(self, raw_file):
        path, schema = raw_file
        __, parallel = _engines(path, schema)
        a = parallel.query("SELECT a1 FROM t").metrics
        total = a.__class__()
        total.merge(a)
        assert total.parallel_chunks == a.parallel_chunks
        assert len(total.worker_breakdowns) == len(a.worker_breakdowns)


class TestBoundaryEdgeCases:
    """Regression tests from the chunk/record boundary audit."""

    TEXT2 = TableSchema.from_pairs([("a", "text"), ("b", "text")])

    def test_crlf_last_field_has_no_carriage_return(self, tmp_path):
        path = tmp_path / "crlf.csv"
        path.write_bytes(b"a,b\r\nfoo,hello\r\nbar,world\r\n")
        engine = PostgresRaw()
        engine.register_csv("t", path, self.TEXT2)
        assert engine.query("SELECT a, b FROM t").rows == [
            ("foo", "hello"),
            ("bar", "world"),
        ]

    def test_crlf_null_token_detected(self, tmp_path):
        path = tmp_path / "crlf.csv"
        path.write_bytes(b"a,b\r\nfoo,\r\nbar,x\r\n")
        engine = PostgresRaw()
        engine.register_csv("t", path, self.TEXT2)
        assert engine.query("SELECT b FROM t").rows == [(None,), ("x",)]

    def test_crlf_positional_map_repeat_query(self, tmp_path):
        path = tmp_path / "crlf.csv"
        path.write_bytes(
            b"a,b\r\n" + b"".join(b"k%d,v%d\r\n" % (i, i) for i in range(50))
        )
        engine = PostgresRaw()
        engine.register_csv("t", path, self.TEXT2)
        first = engine.query("SELECT b FROM t").rows
        second = engine.query("SELECT b FROM t").rows  # via positional map
        assert first == second == [(f"v{i}",) for i in range(50)]

    def test_crlf_parallel_matches_serial(self, tmp_path):
        path = tmp_path / "crlf.csv"
        path.write_bytes(
            b"a,b\r\n"
            + b"".join(b"key%06d,val%06d\r\n" % (i, i) for i in range(4000))
        )
        serial, parallel = _engines(
            path,
            self.TEXT2,
            PARALLEL.with_overrides(parallel_chunk_bytes=4096),
        )
        sql = "SELECT a, b FROM t"
        assert serial.query(sql).rows == parallel.query(sql).rows
        _assert_same_state(serial, parallel)

    def test_unterminated_final_record(self, tmp_path):
        path = tmp_path / "u.csv"
        path.write_bytes(b"a,b\nx,1\ny,2")  # no trailing newline
        engine = PostgresRaw()
        engine.register_csv("t", path, self.TEXT2)
        assert engine.query("SELECT a, b FROM t").rows == [
            ("x", "1"),
            ("y", "2"),
        ]

    def test_unterminated_final_record_parallel(self, tmp_path):
        path = tmp_path / "u.csv"
        body = b"a,b\n" + b"".join(
            b"key%06d,val%06d\n" % (i, i) for i in range(3999)
        )
        path.write_bytes(body + b"last_key,last_val")
        serial, parallel = _engines(
            path,
            self.TEXT2,
            PARALLEL.with_overrides(parallel_chunk_bytes=4096),
        )
        sql = "SELECT a, b FROM t"
        srows, prows = serial.query(sql).rows, parallel.query(sql).rows
        assert srows == prows
        assert srows[-1] == ("last_key", "last_val")
        _assert_same_state(serial, parallel)

    def test_header_only_file_then_append(self, tmp_path):
        # Regression: a cold parallel scan of a header-only file must
        # keep the end-of-header sentinel in the merged line index, or a
        # later append re-tokenizes the header line as data.
        path = tmp_path / "h.csv"
        path.write_bytes(b"a" * 300 + b",b\n")  # wide header, no rows
        schema = TableSchema.from_pairs(
            [("a" * 300, "text"), ("b", "integer")]
        )
        serial = PostgresRaw()
        serial.register_csv("t", path, schema)
        parallel = PostgresRaw(
            PARALLEL.with_overrides(
                parallel_chunk_bytes=64, parallel_backend="process"
            )
        )
        parallel.register_csv("t", path, schema)
        sql = "SELECT b FROM t"
        assert serial.query(sql).rows == parallel.query(sql).rows == []
        spm = serial.table_state("t").positional_map
        ppm = parallel.table_state("t").positional_map
        assert np.array_equal(spm.line_bounds, ppm.line_bounds)
        with open(path, "ab") as f:
            f.write(b"x,1\ny,2\n")
        assert serial.query(sql).rows == parallel.query(sql).rows == [
            (1,),
            (2,),
        ]

    def test_trailing_newline_adds_no_phantom_row(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_bytes(b"a,b\nx,1\n")
        engine = PostgresRaw()
        engine.register_csv("t", path, self.TEXT2)
        assert engine.query("SELECT a FROM t").rows == [("x",)]

    def test_quoted_dialect_parallel_matches_serial(self, tmp_path):
        path = tmp_path / "q.csv"
        lines = ["a,b"] + [f'"x,{i}",{i}' for i in range(4000)]
        path.write_text("\n".join(lines) + "\n")
        schema = TableSchema.from_pairs([("a", "text"), ("b", "integer")])
        dialect = CsvDialect(quote_char='"')
        serial = PostgresRaw()
        serial.register_csv("t", path, schema, dialect)
        parallel = PostgresRaw(
            PARALLEL.with_overrides(parallel_chunk_bytes=8192)
        )
        parallel.register_csv("t", path, schema, dialect)
        sql = "SELECT a, b FROM t WHERE b < 2000"
        assert serial.query(sql).rows == parallel.query(sql).rows
