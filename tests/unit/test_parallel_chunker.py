"""Unit tests for the newline-aligned chunker (repro.parallel.chunker)."""

import pytest

from repro.errors import RawDataError
from repro.parallel.chunker import ChunkSpec, chunk_count, plan_file_chunks


def _lines(n, width=20):
    return "".join(f"row{i:06d}," + "x" * width + "\n" for i in range(n))


class TestChunkCount:
    def test_small_files_stay_whole(self):
        assert chunk_count(100, 1000, 8) == 1

    def test_capped_by_workers(self):
        assert chunk_count(10_000, 10, 4) == 4

    def test_target_bounds_chunk_count(self):
        assert chunk_count(10_000, 2_500, 64) == 4

    def test_degenerate_sizes(self):
        assert chunk_count(0, 100, 4) == 1
        assert chunk_count(100, 0, 4) == 1


class TestFileChunks:
    def test_chunks_cover_file_exactly(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(_lines(500))
        size = path.stat().st_size
        specs = plan_file_chunks(path, size // 4, 4)
        assert len(specs) > 1
        assert specs[0].start == 0
        assert specs[-1].end == size
        for a, b in zip(specs[:-1], specs[1:]):
            assert a.end == b.start

    def test_boundaries_follow_newlines(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(_lines(500))
        data = path.read_bytes()
        specs = plan_file_chunks(path, len(data) // 3, 3)
        for spec in specs[1:]:
            assert data[spec.start - 1 : spec.start] == b"\n"

    def test_crlf_pair_never_split(self, tmp_path):
        path = tmp_path / "crlf.csv"
        path.write_bytes(
            b"".join(b"val%06d,yy\r\n" % i for i in range(500))
        )
        data = path.read_bytes()
        specs = plan_file_chunks(path, len(data) // 4, 4)
        for spec in specs[1:]:
            # A cut sits just after \n, so it can't land between \r and \n.
            assert data[spec.start - 1 : spec.start] == b"\n"
            assert data[spec.start : spec.start + 1] != b"\n"

    def test_unterminated_final_record_stays_in_last_chunk(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(_lines(100) + "tail_without_newline")
        size = path.stat().st_size
        specs = plan_file_chunks(path, size // 2, 2)
        assert specs[-1].end == size

    def test_one_giant_line_collapses_to_single_chunk(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a" * 10_000)  # no newline anywhere
        specs = plan_file_chunks(path, 1_000, 8)
        assert specs == [ChunkSpec(0, 0, 10_000)]

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(RawDataError):
            plan_file_chunks(tmp_path / "nope.csv", 100, 2)
