"""Regression tests for interrupted admission waits.

A waiter whose ``Condition.wait`` raises (KeyboardInterrupt, a raising
signal handler) used to leave its ticket enqueued and ``_waiting_total``
inflated — permanently shrinking the effective ``admission_queue_depth``
— and, if a releaser granted the abandoned ticket, leaked an execution
slot forever.  ``QueryScheduler.acquire`` now settles the books on the
way out; these tests inject a raising ``wait`` and assert every counter
and slot is recovered.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import AdmissionError
from repro.service import QueryScheduler


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.005)


def balanced(scheduler: QueryScheduler) -> None:
    stats = scheduler.stats()
    assert stats["active"] == 0
    assert stats["waiting"] == 0
    assert stats["admitted"] == stats["completed"]


def test_interrupted_wait_restores_queue_capacity():
    scheduler = QueryScheduler(max_concurrent=1, queue_depth=2)
    scheduler.acquire("holder")  # occupy the only slot

    def raising_wait(timeout=None):
        raise KeyboardInterrupt

    original_wait = scheduler._cond.wait
    scheduler._cond.wait = raising_wait
    try:
        with pytest.raises(KeyboardInterrupt):
            scheduler.acquire("victim")
    finally:
        scheduler._cond.wait = original_wait

    # The abandoned ticket is gone: queue depth is fully recovered...
    assert scheduler.waiting == 0
    assert scheduler._queues == {}
    assert list(scheduler._rotation) == []
    # ...so the queue still accepts queue_depth waiters (an inflated
    # _waiting_total would reject the second one).
    admitted = []

    def waiter(tag):
        scheduler.acquire(tag)
        admitted.append(tag)
        scheduler.release()

    threads = [
        threading.Thread(target=waiter, args=(f"w{i}",)) for i in range(2)
    ]
    for t in threads:
        t.start()
    wait_for(lambda: scheduler.waiting == 2)
    scheduler.release()  # holder leaves; both waiters cascade through
    for t in threads:
        t.join(timeout=5)
    assert sorted(admitted) == ["w0", "w1"]
    balanced(scheduler)
    assert scheduler.stats()["peak_queue_depth"] == 2


def test_interrupt_after_grant_returns_the_slot():
    """The nastier race: the releaser grants the ticket, then the wait
    raises before the waiter observes the grant.  The slot must go to
    the next waiter (or back to the pool), not leak to a dead thread."""
    scheduler = QueryScheduler(max_concurrent=1, queue_depth=4)
    scheduler.acquire("holder")

    def wait_granted_then_raise(timeout=None):
        # The condition's lock is an RLock, so the interrupted waiter's
        # own thread can drive the holder's release reentrantly: the
        # ticket is granted *during* the wait, then the wait raises.
        scheduler.release()
        raise KeyboardInterrupt

    original_wait = scheduler._cond.wait
    scheduler._cond.wait = wait_granted_then_raise
    try:
        with pytest.raises(KeyboardInterrupt):
            scheduler.acquire("victim")
    finally:
        scheduler._cond.wait = original_wait

    # The granted-then-abandoned slot was returned, not leaked.
    assert scheduler.active == 0
    assert scheduler.waiting == 0
    balanced(scheduler)
    # All max_concurrent slots are reusable.
    scheduler.acquire("next")
    assert scheduler.active == 1
    scheduler.release()
    balanced(scheduler)


def test_interrupt_after_grant_hands_slot_to_next_waiter():
    scheduler = QueryScheduler(max_concurrent=1, queue_depth=4)
    scheduler.acquire("holder")
    admitted = []
    doomed_thread = threading.current_thread()

    # A healthy waiter from another session queues up *behind* the
    # doomed one (rotation: doomed session first).
    def healthy():
        scheduler.acquire("B")
        admitted.append("B")

    t = threading.Thread(target=healthy)
    original_wait = scheduler._cond.wait

    def selective_wait(timeout=None):
        if threading.current_thread() is not doomed_thread:
            return original_wait(timeout)
        # Emulate a real wait for the doomed waiter: drop the condition
        # lock so the healthy waiter can enqueue behind it, reacquire,
        # then have the holder's release grant the doomed ticket — and
        # die before ever observing the grant.
        scheduler._cond.release()
        try:
            t.start()
            wait_for(lambda: scheduler.waiting == 2)
        finally:
            scheduler._cond.acquire()
        scheduler.release()  # grants the doomed ticket ("A" leads)
        assert scheduler.active == 1  # the grant happened
        raise KeyboardInterrupt

    scheduler._cond.wait = selective_wait
    try:
        with pytest.raises(KeyboardInterrupt):
            scheduler.acquire("A")
    finally:
        scheduler._cond.wait = original_wait

    # The dead waiter's slot cascaded to the healthy one.
    t.join(timeout=5)
    assert admitted == ["B"]
    assert scheduler.active == 1  # B holds it
    scheduler.release()
    balanced(scheduler)


def test_partial_interruption_leaves_fifo_order_intact():
    scheduler = QueryScheduler(max_concurrent=1, queue_depth=8)
    scheduler.acquire("holder")
    order = []
    threads = []

    def worker(tag):
        scheduler.acquire("A")
        order.append(tag)
        scheduler.release()

    for i in range(2):
        t = threading.Thread(target=worker, args=(i,))
        t.start()
        threads.append(t)
        wait_for(lambda n=i: scheduler.waiting == n + 1)

    # A doomed waiter joins the same session's queue, then dies waiting.
    def raising_wait(timeout=None):
        raise KeyboardInterrupt

    original_wait = scheduler._cond.wait
    scheduler._cond.wait = raising_wait
    try:
        with pytest.raises(KeyboardInterrupt):
            scheduler.acquire("A")
    finally:
        scheduler._cond.wait = original_wait
    assert scheduler.waiting == 2  # dead ticket gone, healthy pair left

    scheduler.release()
    for t in threads:
        t.join(timeout=5)
    assert order == [0, 1]
    balanced(scheduler)


def test_admission_rejection_unaffected_by_prior_interruption():
    scheduler = QueryScheduler(max_concurrent=1, queue_depth=0)
    scheduler.acquire("holder")
    # queue_depth=0: the first over-capacity arrival is rejected fast —
    # and must still be after an interrupted wait elsewhere never ran.
    with pytest.raises(AdmissionError):
        scheduler.acquire("other")
    scheduler.release()
    balanced(scheduler)
