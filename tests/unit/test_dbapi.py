"""PEP 249 (DB-API 2.0) conformance for the package surface.

The module globals, the exception hierarchy rooted at ``repro.Error``
and the cursor attributes (``description``, ``rowcount``,
``arraysize``, ``fetchmany``) follow the spec so generic DB-API
tooling can drive the engine.
"""

from __future__ import annotations

import pytest

import repro
from repro import DataType, PostgresRawService
from repro.errors import (
    ProtocolError,
    RawDataError,
    ReproError,
    ServiceError,
    SQLSyntaxError,
)
from repro.executor.result import Cursor


# ----------------------------------------------------------------------
# Module interface.
# ----------------------------------------------------------------------


def test_module_globals():
    assert repro.apilevel == "2.0"
    assert repro.threadsafety == 2
    assert repro.paramstyle == "qmark"


def test_exception_names_exported():
    for name in (
        "Warning",
        "Error",
        "InterfaceError",
        "DatabaseError",
        "DataError",
        "OperationalError",
        "IntegrityError",
        "InternalError",
        "ProgrammingError",
        "NotSupportedError",
    ):
        assert hasattr(repro, name), name
        assert name in repro.__all__


def test_exception_hierarchy():
    """PEP 249 subclassing: everything DB-ish under Error, which is
    the repo's own root so existing ``except ReproError`` still works."""
    assert repro.Error is ReproError
    assert issubclass(repro.DatabaseError, repro.Error)
    assert issubclass(repro.InterfaceError, repro.Error)
    assert issubclass(repro.DataError, repro.DatabaseError)
    assert issubclass(repro.OperationalError, repro.DatabaseError)
    assert issubclass(repro.IntegrityError, repro.DatabaseError)
    assert issubclass(repro.InternalError, repro.DatabaseError)
    assert issubclass(repro.ProgrammingError, repro.DatabaseError)
    assert issubclass(repro.NotSupportedError, repro.DatabaseError)
    assert issubclass(repro.Warning, Exception)
    assert not issubclass(repro.Warning, repro.Error)


def test_exception_aliases_are_engine_errors():
    assert repro.InterfaceError is ProtocolError
    assert repro.DataError is RawDataError
    assert repro.OperationalError is ServiceError
    assert repro.ProgrammingError is SQLSyntaxError


# ----------------------------------------------------------------------
# Cursor attributes.
# ----------------------------------------------------------------------


@pytest.fixture
def session(small_csv):
    path, schema = small_csv
    with PostgresRawService() as service:
        service.register_csv("t", path, schema)
        yield service.session()


@pytest.fixture
def cursor(session):
    return session.cursor("SELECT a0, a1 FROM t WHERE a2 < 500000")


def test_cursor_description(cursor):
    desc = cursor.description
    assert [d[0] for d in desc] == ["a0", "a1"]
    assert [d[1] for d in desc] == [DataType.INTEGER, DataType.INTEGER]
    assert all(len(d) == 7 for d in desc)


def test_cursor_rowcount_before_and_after(cursor):
    assert cursor.rowcount == -1  # unknown until exhausted (PEP 249)
    rows = cursor.fetchall()
    assert cursor.rowcount == len(rows)


def test_cursor_arraysize_drives_fetchmany(cursor):
    assert cursor.arraysize == 1
    assert len(cursor.fetchmany()) == 1
    cursor.arraysize = 7
    assert len(cursor.fetchmany()) == 7
    assert len(cursor.fetchmany(3)) == 3
    cursor.close()


def test_cursor_fetchmany_drains_tail(session):
    cur = session.cursor("SELECT a0 FROM t LIMIT 10")
    assert len(cur.fetchmany(8)) == 8
    assert len(cur.fetchmany(8)) == 2
    assert cur.fetchmany(8) == []
    assert cur.fetchone() is None


def test_cursor_setinputsizes_are_noops(cursor):
    cursor.setinputsizes([1, 2, 3])
    cursor.setoutputsize(100)
    cursor.setoutputsize(100, 0)
    cursor.close()


def test_query_result_description(engine):
    result = engine.query("SELECT a0, COUNT(*) AS n FROM t GROUP BY a0")
    assert [d[0] for d in result.description] == ["a0", "n"]
    assert result.rowcount == len(result.rows)


def test_bare_cursor_is_dbapi_shaped():
    """The Cursor class itself (no engine) honors the contract."""
    from repro.batch import Batch, ColumnVector

    batch = Batch(
        {"x": ColumnVector.from_pylist(DataType.INTEGER, [1, 2, 3])},
        num_rows=3,
    )
    cur = Cursor(["x"], [DataType.INTEGER], iter([batch]))
    assert cur.description[0][:2] == ("x", DataType.INTEGER)
    assert cur.fetchmany(2) == [(1,), (2,)]
    assert cur.fetchmany(2) == [(3,)]
    assert cur.rowcount == 3
