"""Unit tests for ColumnVector and Batch."""

import numpy as np
import pytest

from repro.batch import Batch, ColumnVector
from repro.datatypes import DataType
from repro.errors import ExecutionError


def _int_vector(values, nulls=None):
    return ColumnVector(
        DataType.INTEGER,
        np.asarray(values, dtype=np.int64),
        np.asarray(
            nulls if nulls is not None else [False] * len(values),
            dtype=np.bool_,
        ),
    )


class TestColumnVector:
    def test_length_mismatch_raises(self):
        with pytest.raises(ExecutionError):
            ColumnVector(
                DataType.INTEGER,
                np.zeros(3, dtype=np.int64),
                np.zeros(2, dtype=np.bool_),
            )

    def test_from_pylist_nulls(self):
        vec = ColumnVector.from_pylist(DataType.INTEGER, [1, None, 3])
        assert vec.null_mask.tolist() == [False, True, False]
        assert vec.to_pylist() == [1, None, 3]

    def test_from_pylist_text(self):
        vec = ColumnVector.from_pylist(DataType.TEXT, ["x", None])
        assert vec.to_pylist() == ["x", None]

    def test_take_and_filter(self):
        vec = _int_vector([10, 20, 30, 40], [False, True, False, False])
        taken = vec.take(np.array([3, 0]))
        assert taken.to_pylist() == [40, 10]
        kept = vec.filter(np.array([True, True, False, False]))
        assert kept.to_pylist() == [10, None]

    def test_slice(self):
        vec = _int_vector([1, 2, 3, 4])
        assert vec.slice(1, 3).to_pylist() == [2, 3]

    def test_to_pylist_python_types(self):
        vec = _int_vector([1])
        assert type(vec.to_pylist()[0]) is int
        fvec = ColumnVector.from_pylist(DataType.FLOAT, [1.5])
        assert type(fvec.to_pylist()[0]) is float
        bvec = ColumnVector.from_pylist(DataType.BOOLEAN, [True])
        assert type(bvec.to_pylist()[0]) is bool

    def test_concat(self):
        a = _int_vector([1, 2])
        b = _int_vector([3], [True])
        merged = ColumnVector.concat([a, b])
        assert merged.to_pylist() == [1, 2, None]

    def test_concat_type_mismatch_raises(self):
        a = _int_vector([1])
        b = ColumnVector.from_pylist(DataType.TEXT, ["x"])
        with pytest.raises(ExecutionError):
            ColumnVector.concat([a, b])
        with pytest.raises(ExecutionError):
            ColumnVector.concat([])

    def test_nbytes_text_vs_numeric(self):
        numeric = _int_vector([1, 2, 3])
        assert numeric.nbytes() >= 3 * 8
        text = ColumnVector.from_pylist(DataType.TEXT, ["abc" * 50])
        assert text.nbytes() > 100


class TestBatch:
    def test_ragged_raises(self):
        with pytest.raises(ExecutionError):
            Batch({"a": _int_vector([1, 2]), "b": _int_vector([1])})

    def test_zero_column_batch_keeps_num_rows(self):
        batch = Batch({}, num_rows=7)
        assert batch.num_rows == 7
        assert len(batch) == 7

    def test_explicit_num_rows_must_match(self):
        with pytest.raises(ExecutionError):
            Batch({"a": _int_vector([1, 2])}, num_rows=3)

    def test_column_lookup_error_lists_names(self):
        batch = Batch({"a": _int_vector([1])})
        with pytest.raises(ExecutionError, match="'b'"):
            batch.column("b")

    def test_with_column_length_check(self):
        batch = Batch({"a": _int_vector([1, 2])})
        with pytest.raises(ExecutionError):
            batch.with_column("b", _int_vector([1]))
        extended = batch.with_column("b", _int_vector([5, 6]))
        assert extended.column_names() == ["a", "b"]

    def test_select_filter_take_slice(self):
        batch = Batch(
            {"a": _int_vector([1, 2, 3]), "b": _int_vector([4, 5, 6])}
        )
        assert batch.select(["b"]).column_names() == ["b"]
        filtered = batch.filter(np.array([True, False, True]))
        assert filtered.column("a").to_pylist() == [1, 3]
        taken = batch.take(np.array([2, 2]))
        assert taken.column("b").to_pylist() == [6, 6]
        assert batch.slice(0, 1).num_rows == 1

    def test_rows_iteration(self):
        batch = Batch(
            {"a": _int_vector([1, 2]), "b": _int_vector([3, 4])}
        )
        assert list(batch.rows()) == [(1, 3), (2, 4)]

    def test_concat_batches(self):
        a = Batch({"x": _int_vector([1])})
        b = Batch({"x": _int_vector([2, 3])})
        merged = Batch.concat([a, b])
        assert merged.column("x").to_pylist() == [1, 2, 3]

    def test_concat_empty_list(self):
        assert Batch.concat([]).num_rows == 0

    def test_empty_like(self):
        batch = Batch.empty_like({"a": DataType.INTEGER, "b": DataType.TEXT})
        assert batch.num_rows == 0
        assert batch.column_names() == ["a", "b"]

    def test_to_pydict(self):
        batch = Batch({"a": _int_vector([1, 2])})
        assert batch.to_pydict() == {"a": [1, 2]}
