"""Unit tests for the relational operators."""

import pytest

from repro.batch import Batch, ColumnVector
from repro.datatypes import DataType
from repro.errors import ExecutionError
from repro.executor.operators import (
    AggregateSpec,
    BatchSource,
    Distinct,
    Filter,
    HashAggregate,
    HashJoin,
    Limit,
    Project,
    SingleRowSource,
    Sort,
)
from repro.sql.parser import parse_select


def _expr(fragment):
    return parse_select(f"SELECT {fragment}").items[0].expr


def _source(data, batch_rows=2):
    """BatchSource from {name: (dtype, values)} split into small batches."""
    vectors = {
        name: ColumnVector.from_pylist(dtype, values)
        for name, (dtype, values) in data.items()
    }
    n = len(next(iter(vectors.values()))) if vectors else 0
    types = {name: vec.dtype for name, vec in vectors.items()}

    def factory():
        for r0 in range(0, n, batch_rows):
            yield Batch(
                {
                    name: vec.slice(r0, min(n, r0 + batch_rows))
                    for name, vec in vectors.items()
                }
            )

    return BatchSource(factory, types)


def _collect(op):
    rows = []
    types = op.output_types()
    names = list(types)
    for batch in op.execute():
        lists = [batch.column(n).to_pylist() for n in names]
        rows.extend(zip(*lists))
    return names, rows


class TestFilterProject:
    def test_filter(self):
        src = _source({"a": (DataType.INTEGER, [1, 5, 3, 8])})
        __, rows = _collect(Filter(src, _expr("a > 2")))
        assert rows == [(5,), (3,), (8,)]

    def test_filter_drops_all(self):
        src = _source({"a": (DataType.INTEGER, [1, 2])})
        __, rows = _collect(Filter(src, _expr("a > 99")))
        assert rows == []

    def test_project_computes_and_renames(self):
        src = _source({"a": (DataType.INTEGER, [1, 2])})
        op = Project(src, [("double", _expr("a * 2")), ("a", _expr("a"))])
        names, rows = _collect(op)
        assert names == ["double", "a"]
        assert rows == [(2, 1), (4, 2)]

    def test_project_duplicate_names_raise(self):
        src = _source({"a": (DataType.INTEGER, [1])})
        with pytest.raises(ExecutionError):
            Project(src, [("x", _expr("a")), ("x", _expr("a"))])

    def test_project_empty_raises(self):
        src = _source({"a": (DataType.INTEGER, [1])})
        with pytest.raises(ExecutionError):
            Project(src, [])


class TestHashJoin:
    def _tables(self):
        left = _source(
            {
                "l.k": (DataType.INTEGER, [1, 2, 3, None]),
                "l.v": (DataType.TEXT, ["a", "b", "c", "d"]),
            }
        )
        right = _source(
            {
                "r.k": (DataType.INTEGER, [2, 3, 3, 5]),
                "r.w": (DataType.INTEGER, [20, 30, 31, 50]),
            }
        )
        return left, right

    def test_inner_join(self):
        left, right = self._tables()
        op = HashJoin(left, right, ["l.k"], ["r.k"])
        __, rows = _collect(op)
        assert sorted(rows) == [
            (2, "b", 2, 20),
            (3, "c", 3, 30),
            (3, "c", 3, 31),
        ]

    def test_left_join_pads_nulls(self):
        left, right = self._tables()
        op = HashJoin(left, right, ["l.k"], ["r.k"], kind="left")
        __, rows = _collect(op)
        assert (1, "a", None, None) in rows
        assert (None, "d", None, None) in rows  # NULL key never matches
        assert len(rows) == 5

    def test_null_keys_never_match(self):
        left = _source({"l.k": (DataType.INTEGER, [None])})
        right = _source({"r.k": (DataType.INTEGER, [None])})
        __, rows = _collect(HashJoin(left, right, ["l.k"], ["r.k"]))
        assert rows == []

    def test_multi_key_join(self):
        left = _source(
            {
                "l.a": (DataType.INTEGER, [1, 1, 2]),
                "l.b": (DataType.INTEGER, [1, 2, 2]),
            }
        )
        right = _source(
            {
                "r.a": (DataType.INTEGER, [1, 2]),
                "r.b": (DataType.INTEGER, [2, 2]),
            }
        )
        __, rows = _collect(
            HashJoin(left, right, ["l.a", "l.b"], ["r.a", "r.b"])
        )
        assert sorted(rows) == [(1, 2, 1, 2), (2, 2, 2, 2)]

    def test_overlapping_names_raise(self):
        left = _source({"k": (DataType.INTEGER, [1])})
        right = _source({"k": (DataType.INTEGER, [1])})
        with pytest.raises(ExecutionError):
            HashJoin(left, right, ["k"], ["k"]).output_types()

    def test_key_list_validation(self):
        left = _source({"a": (DataType.INTEGER, [1])})
        right = _source({"b": (DataType.INTEGER, [1])})
        with pytest.raises(ExecutionError):
            HashJoin(left, right, [], [])
        with pytest.raises(ExecutionError):
            HashJoin(left, right, ["a"], ["b"], kind="full")


class TestHashAggregate:
    def test_global_aggregates(self):
        src = _source({"a": (DataType.INTEGER, [1, 2, 3, None])})
        op = HashAggregate(
            src,
            [],
            [
                AggregateSpec("n", "count", None),
                AggregateSpec("nn", "count", _expr("a")),
                AggregateSpec("s", "sum", _expr("a")),
                AggregateSpec("avg", "avg", _expr("a")),
                AggregateSpec("lo", "min", _expr("a")),
                AggregateSpec("hi", "max", _expr("a")),
            ],
        )
        __, rows = _collect(op)
        assert rows == [(4, 3, 6, 2.0, 1, 3)]

    def test_empty_input_single_row(self):
        src = _source({"a": (DataType.INTEGER, [])})
        op = HashAggregate(
            src,
            [],
            [
                AggregateSpec("n", "count", None),
                AggregateSpec("s", "sum", _expr("a")),
            ],
        )
        __, rows = _collect(op)
        assert rows == [(0, None)]

    def test_grouped(self):
        src = _source(
            {
                "g": (DataType.TEXT, ["x", "y", "x", "y", "x"]),
                "v": (DataType.INTEGER, [1, 2, 3, 4, 5]),
            }
        )
        op = HashAggregate(
            src,
            [("g", _expr("g"))],
            [AggregateSpec("total", "sum", _expr("v"))],
        )
        __, rows = _collect(op)
        assert sorted(rows) == [("x", 9), ("y", 6)]

    def test_null_group_key(self):
        src = _source(
            {
                "g": (DataType.INTEGER, [1, None, 1, None]),
                "v": (DataType.INTEGER, [1, 2, 3, 4]),
            }
        )
        op = HashAggregate(
            src,
            [("g", _expr("g"))],
            [AggregateSpec("n", "count", None)],
        )
        __, rows = _collect(op)
        assert sorted(rows, key=str) == [(1, 2), (None, 2)]

    def test_count_distinct(self):
        src = _source({"a": (DataType.INTEGER, [1, 1, 2, None, 2])})
        op = HashAggregate(
            src, [], [AggregateSpec("d", "count", _expr("a"), distinct=True)]
        )
        __, rows = _collect(op)
        assert rows == [(2,)]

    def test_min_max_text(self):
        src = _source({"s": (DataType.TEXT, ["pear", "apple", "fig"])})
        op = HashAggregate(
            src,
            [],
            [
                AggregateSpec("lo", "min", _expr("s")),
                AggregateSpec("hi", "max", _expr("s")),
            ],
        )
        __, rows = _collect(op)
        assert rows == [("apple", "pear")]

    def test_sum_text_raises(self):
        src = _source({"s": (DataType.TEXT, ["a"])})
        op = HashAggregate(src, [], [AggregateSpec("s", "sum", _expr("s"))])
        with pytest.raises(ExecutionError):
            op.output_types()


class TestSortLimitDistinct:
    def test_sort_asc_desc(self):
        src = _source({"a": (DataType.INTEGER, [3, 1, 2])})
        __, rows = _collect(Sort(src, [(_expr("a"), True)]))
        assert rows == [(1,), (2,), (3,)]
        __, rows = _collect(Sort(src, [(_expr("a"), False)]))
        assert rows == [(3,), (2,), (1,)]

    def test_sort_nulls_last_asc_first_desc(self):
        src = _source({"a": (DataType.INTEGER, [2, None, 1])})
        __, rows = _collect(Sort(src, [(_expr("a"), True)]))
        assert rows == [(1,), (2,), (None,)]
        __, rows = _collect(Sort(src, [(_expr("a"), False)]))
        assert rows == [(None,), (2,), (1,)]

    def test_multi_key_sort_stable(self):
        src = _source(
            {
                "a": (DataType.INTEGER, [1, 2, 1, 2]),
                "b": (DataType.INTEGER, [9, 8, 7, 6]),
            }
        )
        op = Sort(src, [(_expr("a"), True), (_expr("b"), False)])
        __, rows = _collect(op)
        assert rows == [(1, 9), (1, 7), (2, 8), (2, 6)]

    def test_sort_requires_keys(self):
        src = _source({"a": (DataType.INTEGER, [1])})
        with pytest.raises(ExecutionError):
            Sort(src, [])

    def test_limit_and_offset_across_batches(self):
        src = _source({"a": (DataType.INTEGER, list(range(10)))}, batch_rows=3)
        __, rows = _collect(Limit(src, 4, 3))
        assert rows == [(3,), (4,), (5,), (6,)]

    def test_limit_none_passthrough(self):
        src = _source({"a": (DataType.INTEGER, [1, 2])})
        __, rows = _collect(Limit(src, None, 1))
        assert rows == [(2,)]

    def test_limit_zero(self):
        src = _source({"a": (DataType.INTEGER, [1, 2])})
        __, rows = _collect(Limit(src, 0))
        assert rows == []

    def test_distinct(self):
        src = _source(
            {"a": (DataType.INTEGER, [1, 2, 1, None, None, 2])},
            batch_rows=2,
        )
        __, rows = _collect(Distinct(src))
        assert rows == [(1,), (2,), (None,)]


class TestMisc:
    def test_single_row_source(self):
        batches = list(SingleRowSource().execute())
        assert len(batches) == 1 and batches[0].num_rows == 1

    def test_explain_lines_nested(self):
        src = _source({"a": (DataType.INTEGER, [1])})
        plan = Limit(Filter(src, _expr("a > 0")), 1)
        lines = plan.explain_lines()
        assert lines[0].startswith("Limit")
        assert lines[1].strip().startswith("Filter")
