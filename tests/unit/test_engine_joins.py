"""Join planning and execution through the engine."""

import pytest

from repro import (
    Column,
    DataType,
    PostgresRaw,
    TableSchema,
    write_csv,
)
from repro.errors import PlanningError


@pytest.fixture
def join_engine(tmp_path):
    """orders (fact) + customers (dim) + regions (tiny dim)."""
    eng = PostgresRaw()

    customers = TableSchema(
        [
            Column("cid", DataType.INTEGER),
            Column("cname", DataType.TEXT),
            Column("rid", DataType.INTEGER),
        ]
    )
    write_csv(
        tmp_path / "customers.csv",
        [
            (1, "ann", 10),
            (2, "bob", 20),
            (3, "cho", 10),
            (4, "dee", None),
        ],
        customers,
    )
    eng.register_csv("customers", tmp_path / "customers.csv", customers)

    orders = TableSchema(
        [
            Column("oid", DataType.INTEGER),
            Column("ocid", DataType.INTEGER),
            Column("amount", DataType.INTEGER),
        ]
    )
    write_csv(
        tmp_path / "orders.csv",
        [
            (100, 1, 5),
            (101, 1, 7),
            (102, 2, 11),
            (103, 3, 13),
            (104, 9, 17),  # dangling customer
            (105, None, 19),
        ],
        orders,
    )
    eng.register_csv("orders", tmp_path / "orders.csv", orders)

    regions = TableSchema(
        [Column("rid", DataType.INTEGER), Column("rname", DataType.TEXT)]
    )
    write_csv(
        tmp_path / "regions.csv", [(10, "north"), (20, "south")], regions
    )
    eng.register_csv("regions", tmp_path / "regions.csv", regions)
    return eng


class TestInnerJoins:
    def test_two_way(self, join_engine):
        result = join_engine.query(
            "SELECT o.oid, c.cname FROM orders o "
            "JOIN customers c ON o.ocid = c.cid ORDER BY o.oid"
        )
        assert list(result) == [
            (100, "ann"),
            (101, "ann"),
            (102, "bob"),
            (103, "cho"),
        ]

    def test_join_condition_in_where(self, join_engine):
        result = join_engine.query(
            "SELECT COUNT(*) AS n FROM orders o JOIN customers c "
            "ON o.ocid = c.cid WHERE c.cname = 'ann'"
        )
        assert result.scalar() == 2

    def test_three_way(self, join_engine):
        result = join_engine.query(
            "SELECT o.oid, r.rname FROM orders o "
            "JOIN customers c ON o.ocid = c.cid "
            "JOIN regions r ON c.rid = r.rid ORDER BY o.oid"
        )
        assert list(result) == [
            (100, "north"),
            (101, "north"),
            (102, "south"),
            (103, "north"),
        ]

    def test_filter_pushdown_through_join(self, join_engine):
        result = join_engine.query(
            "SELECT o.oid FROM orders o JOIN customers c "
            "ON o.ocid = c.cid WHERE o.amount > 10 AND c.rid = 10"
        )
        assert result.column("oid") == [103]

    def test_aggregate_over_join(self, join_engine):
        result = join_engine.query(
            "SELECT c.cname, SUM(o.amount) AS total FROM orders o "
            "JOIN customers c ON o.ocid = c.cid "
            "GROUP BY c.cname ORDER BY total DESC"
        )
        assert list(result) == [("cho", 13), ("bob", 11), ("ann", 12)][
            ::-1
        ] or list(result) == [("cho", 13), ("ann", 12), ("bob", 11)]

    def test_self_join(self, join_engine):
        result = join_engine.query(
            "SELECT a.cid FROM customers a JOIN customers b "
            "ON a.rid = b.rid WHERE b.cname = 'cho' ORDER BY a.cid"
        )
        assert result.column("cid") == [1, 3]

    def test_null_keys_dropped(self, join_engine):
        result = join_engine.query(
            "SELECT COUNT(*) AS n FROM orders o JOIN customers c "
            "ON o.ocid = c.cid"
        )
        assert result.scalar() == 4  # oid 104/105 dangle

    def test_cross_join_rejected(self, join_engine):
        with pytest.raises(PlanningError):
            join_engine.query(
                "SELECT 1 FROM orders o JOIN customers c ON o.oid > c.cid"
            )


class TestLeftJoins:
    def test_left_join_padding(self, join_engine):
        result = join_engine.query(
            "SELECT o.oid, c.cname FROM orders o "
            "LEFT JOIN customers c ON o.ocid = c.cid ORDER BY o.oid"
        )
        assert list(result) == [
            (100, "ann"),
            (101, "ann"),
            (102, "bob"),
            (103, "cho"),
            (104, None),
            (105, None),
        ]

    def test_left_join_where_after_join(self, join_engine):
        result = join_engine.query(
            "SELECT o.oid FROM orders o "
            "LEFT JOIN customers c ON o.ocid = c.cid "
            "WHERE c.cname IS NULL ORDER BY o.oid"
        )
        assert result.column("oid") == [104, 105]

    def test_left_join_on_filter_pushed_to_right(self, join_engine):
        result = join_engine.query(
            "SELECT o.oid, c.cname FROM orders o "
            "LEFT JOIN customers c ON o.ocid = c.cid AND c.rid = 10 "
            "ORDER BY o.oid"
        )
        # bob (rid=20) filtered from the build side -> padded with NULL.
        assert (102, None) in list(result)
        assert (100, "ann") in list(result)

    def test_left_join_non_equi_rejected(self, join_engine):
        with pytest.raises(PlanningError):
            join_engine.query(
                "SELECT 1 FROM orders o LEFT JOIN customers c "
                "ON o.ocid > c.cid"
            )

    def test_mixed_inner_then_left(self, join_engine):
        result = join_engine.query(
            "SELECT o.oid, r.rname FROM orders o "
            "JOIN customers c ON o.ocid = c.cid "
            "LEFT JOIN regions r ON c.rid = r.rid ORDER BY o.oid"
        )
        assert len(result) == 4

    def test_ambiguous_column_across_tables(self, join_engine):
        with pytest.raises(PlanningError, match="ambiguous"):
            join_engine.query(
                "SELECT rid FROM customers c JOIN regions r "
                "ON c.rid = r.rid"
            )


class TestJoinOrdering:
    def test_statistics_driven_order(self, join_engine):
        # Warm statistics with a couple of queries.
        join_engine.query("SELECT COUNT(ocid) FROM orders")
        join_engine.query("SELECT COUNT(cid) FROM customers")
        text = join_engine.explain(
            "SELECT o.oid FROM orders o JOIN customers c ON o.ocid = c.cid"
        )
        # The smaller table (customers) should be chosen as the probe
        # start, making orders the build side of the hash join.
        assert "HashJoin" in text

    def test_star_over_join_qualifies_duplicates(self, join_engine):
        result = join_engine.query(
            "SELECT * FROM customers c JOIN regions r ON c.rid = r.rid"
        )
        # 'rid' appears in both tables -> qualified output names.
        assert "c.rid" in result.column_names
        assert "r.rid" in result.column_names
