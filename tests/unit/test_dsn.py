"""The ``raw://`` DSN surface: parsing, canonical rendering and the
:func:`repro.connect` entry point (plus the deprecation pin on the old
``repro.client.connect(host, port)`` signature)."""

from __future__ import annotations

import pytest

import repro
import repro.client
from repro import (
    PartitionSpec,
    PostgresRawConfig,
    PostgresRawService,
    RawServer,
    generate_csv,
    uniform_table_spec,
)
from repro.dsn import DEFAULT_PORT, format_dsn, parse_dsn
from repro.errors import ProtocolError


# ----------------------------------------------------------------------
# Parsing.
# ----------------------------------------------------------------------


def test_parse_single_host():
    parsed = parse_dsn("raw://127.0.0.1:5433/")
    assert parsed.hosts == [("127.0.0.1", 5433)]
    assert not parsed.is_sharded
    assert parsed.options == {}
    assert parsed.partitions == {}


def test_parse_default_port():
    parsed = parse_dsn("raw://example.test/")
    assert parsed.hosts == [("example.test", DEFAULT_PORT)]


def test_parse_multi_host_with_options():
    parsed = parse_dsn(
        "raw://h1:6001,h2:6002/?token=s3cret&timeout=2.5&frame_bytes=65536"
    )
    assert parsed.hosts == [("h1", 6001), ("h2", 6002)]
    assert parsed.is_sharded
    assert parsed.options == {
        "token": "s3cret",
        "timeout": "2.5",
        "frame_bytes": "65536",
    }


def test_parse_partition_defaults_to_hash():
    parsed = parse_dsn("raw://h:1,h:2/?partition.t=id")
    spec = parsed.partitions["t"]
    assert spec.key == "id"
    assert spec.scheme == "hash"
    assert spec.shards == 2
    assert spec.bounds == ()


def test_parse_partition_range_bounds():
    parsed = parse_dsn(
        "raw://h:1,h:2,h:3/?partition.t=ts:range:2.5|10"
    )
    spec = parsed.partitions["t"]
    assert spec.scheme == "range"
    assert spec.shards == 3
    assert spec.bounds == (2.5, 10)


def test_parse_partition_text_bounds():
    parsed = parse_dsn("raw://h:1,h:2/?partition.t=name:range:m")
    assert parsed.partitions["t"].bounds == ("m",)


@pytest.mark.parametrize(
    "dsn",
    [
        "postgres://h:1/",  # wrong scheme
        "raw:///",  # no host
        "raw://h:notaport/",  # bad port
        "raw://h:1/?bogus=1",  # unknown option
        "raw://h:1,h:2/?partition.t=",  # partition without a key
        "raw://h:1,,h:2/",  # empty host in the list
    ],
)
def test_parse_rejects_junk(dsn):
    with pytest.raises(ProtocolError):
        parse_dsn(dsn)


# ----------------------------------------------------------------------
# Rendering and round-trip.
# ----------------------------------------------------------------------


def test_format_dsn_round_trip():
    hosts = [("127.0.0.1", 6001), ("127.0.0.1", 6002)]
    partitions = {
        "t": PartitionSpec("id", "hash", 2),
        "u": PartitionSpec("ts", "range", 2, (100,)),
    }
    dsn = format_dsn(hosts, partitions, token="abc", timeout=1.5)
    parsed = parse_dsn(dsn)
    assert parsed.hosts == hosts
    assert parsed.options == {"token": "abc", "timeout": "1.5"}
    assert parsed.partitions["t"] == PartitionSpec("id", "hash", 2)
    assert parsed.partitions["u"] == PartitionSpec(
        "ts", "range", 2, (100,)
    )


def test_format_dsn_is_canonical():
    """Sorted options and partitions — same inputs, same string."""
    hosts = [("h", 1)]
    a = format_dsn(hosts, None, timeout=2, token="x")
    b = format_dsn(hosts, None, token="x", timeout=2)
    assert a == b
    assert format_dsn(hosts) == "raw://h:1/"
    assert format_dsn(hosts, None, token=None) == "raw://h:1/"


# ----------------------------------------------------------------------
# repro.connect against a live server.
# ----------------------------------------------------------------------


@pytest.fixture
def served(tmp_path):
    path = tmp_path / "t.csv"
    schema = generate_csv(
        path, uniform_table_spec(n_attrs=4, n_rows=500, seed=3)
    )
    with PostgresRawService(PostgresRawConfig(server_port=0)) as service:
        service.register_csv("t", path, schema)
        server = RawServer(service).start()
        try:
            yield server
        finally:
            server.stop()


def test_connect_single_host_dsn(served):
    with repro.connect(f"raw://127.0.0.1:{served.port}/") as conn:
        result = conn.query("SELECT COUNT(*) AS n FROM t")
        assert result.scalar() == 500
    assert isinstance(conn, repro.client.Connection)


def test_connect_old_signature_warns_but_works(served):
    """The pre-DSN entry point still functions, with a deprecation."""
    with pytest.warns(DeprecationWarning, match="raw://"):
        conn = repro.client.connect("127.0.0.1", served.port)
    try:
        assert conn.query("SELECT COUNT(*) AS n FROM t").scalar() == 500
    finally:
        conn.close()


def test_connect_rejects_bad_dsn():
    with pytest.raises(ProtocolError):
        repro.connect("http://127.0.0.1:5433/")
