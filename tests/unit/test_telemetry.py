"""Unit coverage for the telemetry subsystem: registry, tracer,
slow-query log, the QueryMetrics bucket invariant and the worker-error
wrapping that feeds the ``scan_worker_errors`` counter."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.config import PostgresRawConfig
from repro.core.metrics import BreakdownComponent, QueryMetrics
from repro.errors import RawDataError, ScanWorkerError
from repro.parallel.worker import ChunkTask, scan_chunk
from repro.rawio.dialect import CsvDialect
from repro.telemetry import MetricsRegistry, Telemetry, Tracer
from repro.telemetry.registry import NULL_INSTRUMENT


class TestRegistry:
    def test_counter_and_gauge_roundtrip(self):
        reg = MetricsRegistry()
        reg.counter("queries").inc()
        reg.counter("queries").inc(2)
        reg.gauge("occupancy").set(3)
        reg.gauge("occupancy").dec()
        snap = reg.snapshot()
        assert snap["counters"]["queries"] == 3
        assert snap["gauges"]["occupancy"] == 2

    def test_labels_make_distinct_instruments(self):
        reg = MetricsRegistry()
        reg.counter("hits", {"table": "a"}).inc()
        reg.counter("hits", {"table": "b"}).inc(5)
        snap = reg.snapshot()
        assert snap["counters"]['hits{table="a"}'] == 1
        assert snap["counters"]['hits{table="b"}'] == 5

    def test_histogram_summary_and_percentile_order(self):
        reg = MetricsRegistry()
        hist = reg.histogram("latency")
        for ms in range(1, 101):
            hist.observe(ms / 1000.0)
        snap = hist.snapshot()
        assert snap["count"] == 100
        assert snap["min"] == pytest.approx(0.001)
        assert snap["max"] == pytest.approx(0.100)
        assert snap["p50"] <= snap["p95"] <= snap["p99"] <= snap["max"]
        assert snap["p50"] == pytest.approx(0.05, rel=0.5)

    def test_empty_histogram_percentile_is_none(self):
        hist = MetricsRegistry().histogram("empty")
        assert hist.percentile(0.5) is None
        assert hist.snapshot() == {"count": 0, "sum": 0.0}

    def test_disabled_registry_hands_out_null_instruments(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("c") is NULL_INSTRUMENT
        assert reg.histogram("h") is NULL_INSTRUMENT
        reg.counter("c").inc()
        reg.histogram("h").observe(1.0)
        snap = reg.snapshot()
        assert snap["counters"] == {} and snap["histograms"] == {}

    def test_collectors_run_even_when_disabled(self):
        reg = MetricsRegistry(enabled=False)
        reg.register_collector("component", lambda: {"active": 7})
        assert reg.snapshot()["collectors"]["component"] == {"active": 7}

    def test_prometheus_text_exposition(self):
        reg = MetricsRegistry()
        reg.counter("queries_total").inc(4)
        reg.histogram("latency_seconds").observe(0.01)
        reg.register_collector("scheduler", lambda: {"active": 2})
        text = reg.prometheus_text()
        assert "# TYPE repro_queries_total counter" in text
        assert "repro_queries_total 4.0" in text
        assert "repro_latency_seconds_count 1" in text
        assert 'le="+Inf"' in text
        assert "repro_scheduler_active 2" in text


class TestTracer:
    def test_span_tree_structure(self):
        tracer = Tracer()
        root = tracer.new_trace("query", sql="SELECT 1")
        with tracer.span(root, "admission") as sp:
            sp.attrs["wait_s"] = 0.0
        child = tracer.start_span(root, "produce")
        tracer.add_span(child, "scan-chunk:0", 0.002, rows=10)
        tracer.end_span(child)
        tracer.finish(root, rows=10)
        tree = tracer.trace_dict(root.trace_id)
        assert tree["trace_id"] == root.trace_id
        assert tree["n_spans"] == 4
        names = {c["name"] for c in tree["root"]["children"]}
        assert names == {"admission", "produce"}
        produce = next(
            c for c in tree["root"]["children"] if c["name"] == "produce"
        )
        assert produce["children"][0]["name"] == "scan-chunk:0"
        assert produce["children"][0]["attrs"]["rows"] == 10

    def test_finished_traces_land_in_ring(self):
        tracer = Tracer(keep=2)
        ids = []
        for i in range(3):
            root = tracer.new_trace("q", n=i)
            tracer.finish(root)
            ids.append(root.trace_id)
        recent = tracer.recent_traces()
        assert [t["trace_id"] for t in recent] == ids[1:]
        assert tracer.trace_dict(ids[0]) is None  # evicted
        stats = tracer.stats()
        assert stats["started"] == 3 and stats["finished"] == 3

    def test_span_for_trace_attaches_after_finish(self):
        tracer = Tracer()
        root = tracer.new_trace("q")
        tracer.finish(root)
        span = tracer.span_for_trace(root.trace_id, "wire:frames", qid=1)
        tracer.end_span(span, rows=3)
        tree = tracer.trace_dict(root.trace_id)
        assert tree["root"]["children"][0]["name"] == "wire:frames"

    def test_disabled_tracer_is_all_none(self):
        tracer = Tracer(enabled=False)
        root = tracer.new_trace("q")
        assert root is None
        assert tracer.start_span(root, "x") is None
        with tracer.span(root, "y") as sp:
            assert sp is None
        tracer.finish(root)
        assert tracer.recent_traces() == []

    def test_jsonl_export_roundtrips(self, tmp_path):
        telemetry = Telemetry()
        root = telemetry.tracer.new_trace("q", sql="SELECT 1")
        telemetry.tracer.finish(root)
        path = tmp_path / "traces.jsonl"
        assert telemetry.export_traces_jsonl(path) == 1
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["trace_id"] == root.trace_id


class TestMetricsInvariant:
    def test_buckets_plus_residual_sum_exactly_to_total(self):
        m = QueryMetrics()
        m.add(BreakdownComponent.IO, 0.010)
        m.add(BreakdownComponent.TOKENIZING, 0.020)
        m.add(BreakdownComponent.CONVERT, 0.005)
        m.add(BreakdownComponent.NODB, 0.001)
        m.total_seconds = 0.050
        m.settle_processing()
        assert m.processing_seconds == pytest.approx(0.014)
        assert m.unattributed_seconds == 0.0
        assert m.accounted_seconds() + m.unattributed_seconds == (
            pytest.approx(m.total_seconds, abs=1e-12)
        )

    def test_overshoot_lands_in_negative_residual(self):
        # Attributed buckets can exceed the measured wall clock (e.g. a
        # consumer stamped total while a merge still folded worker time
        # in); processing clamps at zero, the residual records the rest.
        m = QueryMetrics()
        m.add(BreakdownComponent.IO, 0.030)
        m.add(BreakdownComponent.TOKENIZING, 0.040)
        m.total_seconds = 0.050
        m.settle_processing()
        assert m.processing_seconds == 0.0
        assert m.unattributed_seconds == pytest.approx(-0.020)
        assert m.accounted_seconds() + m.unattributed_seconds == (
            pytest.approx(m.total_seconds, abs=1e-12)
        )

    def test_merge_carries_the_residual(self):
        a, b = QueryMetrics(), QueryMetrics()
        for m in (a, b):
            m.add(BreakdownComponent.IO, 0.02)
            m.total_seconds = 0.01
            m.settle_processing()
        a.merge(b)
        assert a.unattributed_seconds == pytest.approx(-0.02)


class TestSlowQueryLog:
    def test_note_query_records_past_threshold(self):
        telemetry = Telemetry(slow_query_s=0.001)
        root = telemetry.tracer.new_trace("query", sql="SELECT slow")
        telemetry.tracer.finish(root)
        m = QueryMetrics()
        m.add(BreakdownComponent.IO, 0.004)
        m.total_seconds = 0.005
        m.rows_scanned = 42
        m.settle_processing()
        telemetry.note_query(m, trace_id=root.trace_id, sql="SELECT slow")
        entries = telemetry.slow_queries()
        assert len(entries) == 1
        entry = entries[0]
        assert entry["sql"] == "SELECT slow"
        assert entry["rows_scanned"] == 42
        assert entry["span_tree"]["trace_id"] == root.trace_id
        assert set(entry["breakdown"]) == {
            "processing", "io", "convert", "parsing", "tokenizing",
            "nodb", "unattributed",
        }
        assert sum(entry["breakdown"].values()) == pytest.approx(
            m.total_seconds, abs=1e-12
        )
        snap = telemetry.snapshot()
        assert snap["counters"]["slow_queries_total"] == 1
        assert snap["counters"]["queries_total"] == 1

    def test_fast_queries_stay_out(self):
        telemetry = Telemetry(slow_query_s=10.0)
        m = QueryMetrics()
        m.total_seconds = 0.001
        telemetry.note_query(m)
        assert telemetry.slow_queries() == []

    def test_slow_log_exports_jsonl(self, tmp_path):
        telemetry = Telemetry(slow_query_s=0.0001)
        m = QueryMetrics()
        m.total_seconds = 1.0
        telemetry.note_query(m, sql="SELECT 1")
        path = tmp_path / "slow.jsonl"
        assert telemetry.export_slow_queries_jsonl(path) == 1
        assert json.loads(path.read_text())["sql"] == "SELECT 1"

    def test_from_config_honors_knobs(self):
        config = PostgresRawConfig(
            telemetry_enabled=False, slow_query_s=None
        )
        telemetry = Telemetry.from_config(config)
        assert not telemetry.registry.enabled
        assert not telemetry.tracer.enabled


class TestScanWorkerError:
    def _failing_task(self):
        # Neither inline text nor a path: _read_chunk raises, and the
        # wrapper must attach the chunk's scan context.
        return ChunkTask(
            index=3,
            entry_name="orders",
            schema=None,
            dialect=CsvDialect(),
            output_columns=[],
            predicate=None,
            config=PostgresRawConfig(),
            collect_stats=False,
            first_chunk=True,
        )

    def test_worker_failure_carries_chunk_context(self):
        with pytest.raises(ScanWorkerError) as info:
            scan_chunk(self._failing_task())
        err = info.value
        assert err.chunk_index == 3
        assert err.table == "orders"
        assert "chunk 3" in str(err) and "orders" in str(err)
        # Still a RawDataError: existing handlers keep catching it.
        assert isinstance(err, RawDataError)

    def test_worker_error_survives_pickling(self):
        # The process backend ships exceptions through pickle; the
        # chunk context must survive the round trip.
        try:
            scan_chunk(self._failing_task())
        except ScanWorkerError as exc:
            clone = pickle.loads(pickle.dumps(exc))
        assert clone.chunk_index == 3
        assert clone.table == "orders"
