"""Format adapters: sniffing edges, the JSONL record parser, and the
CRLF / unterminated-final-record normalization contract (which lives
once, in the adapter layer)."""

import numpy as np
import pytest

from repro import (
    Column,
    DataType,
    PostgresRaw,
    RawDataError,
    TableSchema,
    sniff_format,
    write_jsonl,
)
from repro.formats import (
    JSONL_DIALECT,
    JSONL_NULL,
    adapter_for,
)
from repro.formats.jsonl import parse_record, scan_value
from repro.rawio.reader import decode_raw
from repro.rawio.sniffer import infer_schema_jsonl


SCHEMA = TableSchema(
    [
        Column("a", DataType.INTEGER),
        Column("b", DataType.TEXT),
    ]
)


# ----------------------------------------------------------------------
# Format sniffing, including the ambiguous edges from the issue.
# ----------------------------------------------------------------------


def test_sniff_jsonl(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text('{"a": 1, "b": "x"}\n{"a": 2, "b": null}\n')
    assert sniff_format(path) == "jsonl"


def test_sniff_csv(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("a,b\n1,x\n")
    assert sniff_format(path) == "csv"


def test_sniff_single_column_csv(tmp_path):
    # A single-column CSV has no delimiter at all — still CSV.
    path = tmp_path / "one.csv"
    path.write_text("a\n1\n2\n3\n")
    assert sniff_format(path) == "csv"


def test_sniff_json_looking_quoted_csv_field(tmp_path):
    # A quoted CSV field containing JSON text must not flip the sniff:
    # the line starts with the quote character, not a bare '{'.
    path = tmp_path / "q.csv"
    path.write_text('payload,n\n"{""a"": 1}",2\n')
    assert sniff_format(path) == "csv"


def test_sniff_empty_file_defaults_to_csv(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("")
    assert sniff_format(path) == "csv"


def test_sniff_headerless_brace_line_that_is_not_json(tmp_path):
    # Starts with '{' but does not parse as a JSON object: CSV.
    path = tmp_path / "weird.csv"
    path.write_text("{not json}\n")
    assert sniff_format(path) == "csv"


def test_adapter_for_unknown_format_raises():
    with pytest.raises(ValueError):
        adapter_for("parquet")


# ----------------------------------------------------------------------
# JSONL schema inference.
# ----------------------------------------------------------------------


def test_infer_schema_jsonl_types(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text(
        '{"i": 1, "f": 1.5, "b": true, "s": "x", "d": "2021-03-04", '
        '"n": null}\n'
        '{"i": 2, "f": 2, "b": false, "s": "y", "d": "2022-05-06", '
        '"n": null}\n'
    )
    schema = infer_schema_jsonl(path)
    got = {c.name: c.dtype for c in schema.columns}
    assert got == {
        "i": DataType.INTEGER,
        "f": DataType.FLOAT,
        "b": DataType.BOOLEAN,
        "s": DataType.TEXT,
        "d": DataType.DATE,
        "n": DataType.TEXT,  # null-only: widest type
    }
    # First-seen key order is preserved.
    assert schema.names() == ["i", "f", "b", "s", "d", "n"]


def test_infer_schema_jsonl_rejects_nested(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text('{"a": {"nested": 1}}\n')
    with pytest.raises(RawDataError):
        infer_schema_jsonl(path)


def test_infer_schema_jsonl_empty_file(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text("")
    with pytest.raises(RawDataError):
        infer_schema_jsonl(path)


# ----------------------------------------------------------------------
# The JSONL record scanner.
# ----------------------------------------------------------------------


def test_scan_value_forms():
    line = '{"a": 1}'
    assert scan_value('"x"', 0, 3) == ("x", 3)
    assert scan_value("null,", 0, 5) == (JSONL_NULL, 4)
    assert scan_value("true}", 0, 5) == ("true", 4)
    assert scan_value("false}", 0, 6) == ("false", 5)
    assert scan_value("-1.5e3,", 0, 7) == ("-1.5e3", 6)
    with pytest.raises(RawDataError):
        scan_value(line, 0, len(line))  # nested object


def test_scan_string_escapes():
    content = '"he said \\"hi\\", bye"'
    text, end = scan_value(content, 0, len(content))
    assert text == 'he said "hi", bye'
    assert end == len(content)


def test_parse_record_key_order_and_unknown_keys():
    content = '{"b": "x", "extra": 9, "a": 7}'
    starts, texts = parse_record(
        content, 0, len(content), {"a": 0, "b": 1}
    )
    assert texts == ["7", "x"]
    # Offsets point at each *value* start, wherever the key appears.
    assert content[starts[0]] == "7"
    assert content[starts[1] : starts[1] + 3] == '"x"'


def test_parse_record_duplicate_key_last_wins():
    content = '{"a": 1, "b": "x", "a": 2}'
    _, texts = parse_record(content, 0, len(content), {"a": 0, "b": 1})
    assert texts == ["2", "x"]


def test_parse_record_missing_key_raises():
    content = '{"a": 1}'
    with pytest.raises(RawDataError, match="missing key"):
        parse_record(content, 0, len(content), {"a": 0, "b": 1}, row=3)


def test_parse_record_trailing_garbage_raises():
    content = '{"a": 1} trailing'
    with pytest.raises(RawDataError, match="trailing"):
        parse_record(content, 0, len(content), {"a": 0})


def test_jsonl_tokenize_span_full_width_only():
    adapter = adapter_for("jsonl")
    content = '{"a": 1, "b": "x"}\n'
    starts = np.array([0], dtype=np.int64)
    ends = np.array([18], dtype=np.int64)
    with pytest.raises(RawDataError, match="full-width"):
        adapter.tokenize_span(
            content, starts, ends, 0, 0, 2, JSONL_DIALECT, schema=SCHEMA
        )
    tokenized = adapter.tokenize_span(
        content, starts, ends, 0, 1, 2, JSONL_DIALECT, schema=SCHEMA
    )
    assert tokenized.texts_of(0) == ["1"]
    assert tokenized.texts_of(1) == ["x"]


def test_jsonl_extract_field_jumps_to_value():
    adapter = adapter_for("jsonl")
    content = '{"a": 42, "b": "hi"}\n'
    # The map records the value start of "b": extract re-scans it.
    start = content.index('"hi"')
    assert (
        adapter.extract_field(content, start, len(content) - 1, JSONL_DIALECT)
        == "hi"
    )


# ----------------------------------------------------------------------
# Normalization contract: CRLF and unterminated final records are
# handled once — decode_raw and the adapter line index — for every
# format.  Pinned before the refactor moved call sites around.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("fmt", ["csv", "jsonl"])
def test_crlf_normalized_once_at_decode(tmp_path, fmt):
    if fmt == "csv":
        raw = b"1,x\r\n2,y\r\n"
        path = tmp_path / "t.csv"
    else:
        raw = b'{"a": 1, "b": "x"}\r\n{"a": 2, "b": "y"}\r\n'
        path = tmp_path / "t.jsonl"
    path.write_bytes(raw)
    content = decode_raw(raw, "utf-8")
    assert "\r" not in content

    eng = PostgresRaw()
    if fmt == "csv":
        from repro.rawio.dialect import CsvDialect

        eng.register_csv(
            "t", path, SCHEMA, CsvDialect(has_header=False)
        )
    else:
        eng.register_jsonl("t", path, SCHEMA)
    assert list(eng.query("SELECT a, b FROM t")) == [(1, "x"), (2, "y")]
    # Warm (positional-map) scan answers identically over CRLF input.
    assert list(eng.query("SELECT a, b FROM t")) == [(1, "x"), (2, "y")]
    eng.close()


@pytest.mark.parametrize("fmt", ["csv", "jsonl"])
def test_unterminated_final_record(tmp_path, fmt):
    if fmt == "csv":
        path = tmp_path / "t.csv"
        path.write_text("1,x\n2,y")  # no trailing newline
    else:
        path = tmp_path / "t.jsonl"
        path.write_text('{"a": 1, "b": "x"}\n{"a": 2, "b": "y"}')
    eng = PostgresRaw()
    if fmt == "csv":
        from repro.rawio.dialect import CsvDialect

        eng.register_csv(
            "t", path, SCHEMA, CsvDialect(has_header=False)
        )
    else:
        eng.register_jsonl("t", path, SCHEMA)
    assert list(eng.query("SELECT a, b FROM t")) == [(1, "x"), (2, "y")]
    assert list(eng.query("SELECT a, b FROM t")) == [(1, "x"), (2, "y")]
    eng.close()


def test_write_jsonl_round_trip(tmp_path):
    schema = TableSchema(
        [
            Column("i", DataType.INTEGER),
            Column("f", DataType.FLOAT),
            Column("b", DataType.BOOLEAN),
            Column("s", DataType.TEXT),
        ]
    )
    rows = [
        (1, 1.5, True, "plain"),
        (None, None, None, None),
        (-7, 0.25, False, 'quotes " and, commas'),
    ]
    path = tmp_path / "t.jsonl"
    write_jsonl(path, rows, schema)
    assert sniff_format(path) == "jsonl"
    eng = PostgresRaw()
    eng.register_jsonl("t", path, schema)
    assert list(eng.query("SELECT i, f, b, s FROM t")) == rows
    eng.close()
