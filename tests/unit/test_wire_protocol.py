"""The wire protocol's building blocks in isolation: frame round-trips,
oversized-frame rejection, row-frame splitting, and the exception <->
wire-code mapping."""

from __future__ import annotations

import io
import struct

import pytest

from repro.errors import (
    AdmissionError,
    CatalogError,
    CursorInvalidError,
    CursorTimeoutError,
    ExecutionError,
    ProtocolError,
    ReproError,
    SQLSyntaxError,
    error_from_wire,
    fresh_copy,
    wire_code_for,
)
from repro.server.protocol import (
    FrameType,
    encode_frame,
    iter_row_frames,
    read_frame_blocking,
)


def roundtrip(ftype: FrameType, payload: dict, max_bytes=1 << 20):
    stream = io.BytesIO(encode_frame(ftype, payload))
    return read_frame_blocking(stream, max_bytes)


class TestFraming:
    def test_roundtrip_preserves_type_and_payload(self):
        ftype, payload = roundtrip(
            FrameType.QUERY, {"qid": 7, "sql": "SELECT 1"}
        )
        assert ftype is FrameType.QUERY
        assert payload == {"qid": 7, "sql": "SELECT 1"}

    def test_roundtrip_value_types_survive(self):
        rows = [[1, 1.5, "x", True, None], [-2, float("nan"), "", False, 0]]
        _, payload = roundtrip(FrameType.ROWS, {"qid": 1, "rows": rows})
        got = payload["rows"]
        assert got[0] == rows[0]
        # NaN != NaN: compare field-by-field.
        assert got[1][0] == -2 and got[1][1] != got[1][1]
        assert got[1][2:] == ["", False, 0]

    def test_eof_at_boundary_is_none(self):
        assert read_frame_blocking(io.BytesIO(b""), 1024) is None

    def test_truncated_header_raises(self):
        with pytest.raises(ProtocolError, match="mid frame header"):
            read_frame_blocking(io.BytesIO(b"\x00\x00"), 1024)

    def test_truncated_body_raises(self):
        whole = encode_frame(FrameType.HELLO, {"version": 1})
        with pytest.raises(ProtocolError, match="mid frame body"):
            read_frame_blocking(io.BytesIO(whole[:-3]), 1024)

    def test_oversized_frame_rejected_without_reading_body(self):
        big = encode_frame(FrameType.ROWS, {"rows": [["x" * 5000]]})
        with pytest.raises(ProtocolError, match="exceeds frame_bytes"):
            read_frame_blocking(io.BytesIO(big), 1024)

    def test_unknown_frame_type_raises(self):
        body = b'{"a":1}'
        raw = struct.pack("!I", len(body) + 1) + b"\x7f" + body
        with pytest.raises(ProtocolError, match="unknown frame type"):
            read_frame_blocking(io.BytesIO(raw), 1024)

    def test_non_object_payload_raises(self):
        body = b"[1,2]"
        raw = struct.pack("!I", len(body) + 1) + bytes(
            (int(FrameType.HELLO),)
        ) + body
        with pytest.raises(ProtocolError, match="JSON object"):
            read_frame_blocking(io.BytesIO(raw), 1024)


class TestRowFrameSplitting:
    def decode_all(self, frames):
        rows = []
        for frame in frames:
            _, payload = read_frame_blocking(io.BytesIO(frame), 1 << 30)
            rows.extend(payload["rows"])
        return rows

    def test_small_rowset_is_one_frame(self):
        rows = [[i, i * 10] for i in range(10)]
        frames = list(iter_row_frames(1, rows, 1 << 20))
        assert len(frames) == 1
        assert self.decode_all(frames) == rows

    def test_large_rowset_splits_preserving_order(self):
        rows = [[i, "v" * 50] for i in range(500)]
        frames = list(iter_row_frames(3, rows, 2048))
        assert len(frames) > 1
        assert all(len(f) <= 2048 for f in frames)
        assert self.decode_all(frames) == rows

    def test_single_giant_row_still_sent(self):
        rows = [["x" * 10_000]]
        frames = list(iter_row_frames(1, rows, 1024))
        assert len(frames) == 1  # unsplittable: oversized but delivered
        assert self.decode_all(frames) == rows

    def test_empty_rowset_yields_no_frames(self):
        assert list(iter_row_frames(1, [], 1024)) == []


class TestWireCodes:
    @pytest.mark.parametrize(
        "exc, code",
        [
            (AdmissionError("x"), "admission"),
            (CursorTimeoutError("x"), "cursor_timeout"),
            (CursorInvalidError("x"), "cursor_invalid"),
            (CatalogError("x"), "catalog"),
            (SQLSyntaxError("x"), "sql_syntax"),
            (ExecutionError("x"), "execution"),
            (ProtocolError("x"), "protocol"),
            (ReproError("x"), "internal"),
            (ValueError("x"), "internal"),  # outside the hierarchy
        ],
    )
    def test_code_for_exception(self, exc, code):
        assert wire_code_for(exc) == code

    def test_roundtrip_reconstructs_class_and_message(self):
        exc = error_from_wire(
            wire_code_for(AdmissionError("overloaded")), "overloaded"
        )
        assert isinstance(exc, AdmissionError)
        assert str(exc) == "overloaded"

    def test_unknown_code_degrades_to_repro_error(self):
        exc = error_from_wire("from_the_future", "boom")
        assert type(exc) is ReproError
        assert "from_the_future" in str(exc) and "boom" in str(exc)

    def test_fresh_copy_preserves_attributes(self):
        from repro.errors import RawDataError

        original = RawDataError("bad row", row=17)
        duplicate = fresh_copy(original)
        assert duplicate is not original
        assert isinstance(duplicate, RawDataError)
        assert str(duplicate) == "bad row" and duplicate.row == 17
        assert duplicate.__traceback__ is None
