"""The wire protocol's building blocks in isolation: frame round-trips,
oversized-frame rejection, ROWS-frame splitting under both encodings
(json floor and v2 binary columnar), encoding negotiation, and the
exception <-> wire-code mapping."""

from __future__ import annotations

import io
import struct

import pytest

from repro.batch import Batch, ColumnVector
from repro.datatypes import DataType
from repro.errors import (
    AdmissionError,
    CatalogError,
    CursorInvalidError,
    CursorTimeoutError,
    ExecutionError,
    ProtocolError,
    ReproError,
    SQLSyntaxError,
    StreamLimitError,
    error_from_wire,
    fresh_copy,
    wire_code_for,
)
from repro.executor.result import batch_rows
from repro.server.encoding import (
    ENCODING_BINARY,
    ENCODING_JSON,
    decode_binary_rows,
    iter_binary_row_frames,
    negotiate_encoding,
)
from repro.server.protocol import (
    FrameType,
    encode_frame,
    iter_row_frames,
    read_frame_blocking,
)


def roundtrip(ftype: FrameType, payload: dict, max_bytes=1 << 20):
    stream = io.BytesIO(encode_frame(ftype, payload))
    return read_frame_blocking(stream, max_bytes)


class TestFraming:
    def test_roundtrip_preserves_type_and_payload(self):
        ftype, payload = roundtrip(
            FrameType.QUERY, {"qid": 7, "sql": "SELECT 1"}
        )
        assert ftype is FrameType.QUERY
        assert payload == {"qid": 7, "sql": "SELECT 1"}

    def test_roundtrip_value_types_survive(self):
        rows = [[1, 1.5, "x", True, None], [-2, float("nan"), "", False, 0]]
        _, payload = roundtrip(FrameType.ROWS, {"qid": 1, "rows": rows})
        got = payload["rows"]
        assert got[0] == rows[0]
        # NaN != NaN: compare field-by-field.
        assert got[1][0] == -2 and got[1][1] != got[1][1]
        assert got[1][2:] == ["", False, 0]

    def test_eof_at_boundary_is_none(self):
        assert read_frame_blocking(io.BytesIO(b""), 1024) is None

    def test_truncated_header_raises(self):
        with pytest.raises(ProtocolError, match="mid frame header"):
            read_frame_blocking(io.BytesIO(b"\x00\x00"), 1024)

    def test_truncated_body_raises(self):
        whole = encode_frame(FrameType.HELLO, {"version": 1})
        with pytest.raises(ProtocolError, match="mid frame body"):
            read_frame_blocking(io.BytesIO(whole[:-3]), 1024)

    def test_oversized_frame_rejected_without_reading_body(self):
        big = encode_frame(FrameType.ROWS, {"rows": [["x" * 5000]]})
        with pytest.raises(ProtocolError, match="exceeds frame_bytes"):
            read_frame_blocking(io.BytesIO(big), 1024)

    def test_unknown_frame_type_raises(self):
        body = b'{"a":1}'
        raw = struct.pack("!I", len(body) + 1) + b"\x7f" + body
        with pytest.raises(ProtocolError, match="unknown frame type"):
            read_frame_blocking(io.BytesIO(raw), 1024)

    def test_non_object_payload_raises(self):
        body = b"[1,2]"
        raw = struct.pack("!I", len(body) + 1) + bytes(
            (int(FrameType.HELLO),)
        ) + body
        with pytest.raises(ProtocolError, match="JSON object"):
            read_frame_blocking(io.BytesIO(raw), 1024)


class TestRowFrameSplitting:
    def decode_all(self, frames):
        rows = []
        for frame in frames:
            _, payload = read_frame_blocking(io.BytesIO(frame), 1 << 30)
            rows.extend(payload["rows"])
        return rows

    def test_small_rowset_is_one_frame(self):
        rows = [[i, i * 10] for i in range(10)]
        frames = list(iter_row_frames(1, rows, 1 << 20))
        assert len(frames) == 1
        assert self.decode_all(frames) == rows

    def test_large_rowset_splits_preserving_order(self):
        rows = [[i, "v" * 50] for i in range(500)]
        frames = list(iter_row_frames(3, rows, 2048))
        assert len(frames) > 1
        assert all(len(f) <= 2048 for f in frames)
        assert self.decode_all(frames) == rows

    def test_single_giant_row_still_sent(self):
        rows = [["x" * 10_000]]
        frames = list(iter_row_frames(1, rows, 1024))
        assert len(frames) == 1  # unsplittable: oversized but delivered
        assert self.decode_all(frames) == rows

    def test_empty_rowset_yields_no_frames(self):
        assert list(iter_row_frames(1, [], 1024)) == []


def rows_to_batch(
    rows: list[tuple], dtypes: list[DataType]
) -> tuple[Batch, list[str]]:
    """Column-ize literal rows the way the executor would."""
    names = [f"c{i}" for i in range(len(dtypes))]
    columns = {
        name: ColumnVector.from_pylist(dtype, [row[i] for row in rows])
        for i, (name, dtype) in enumerate(zip(names, dtypes))
    }
    return Batch(columns, num_rows=len(rows)), names


def decode_frames(frames: list[bytes], names, dtypes) -> list[tuple]:
    """Rows carried by a frame sequence, either encoding."""
    out: list[tuple] = []
    for frame in frames:
        ftype, payload = read_frame_blocking(io.BytesIO(frame), 1 << 30)
        if ftype is FrameType.ROWS_BIN:
            out.extend(
                batch_rows(
                    decode_binary_rows(payload["data"], names, dtypes),
                    names,
                )
            )
        else:
            assert ftype is FrameType.ROWS
            out.extend(tuple(row) for row in payload["rows"])
    return out


#: Unicode/NULL-heavy mixed-type rows: every dtype, empty and non-ASCII
#: strings, NULLs in every column, negative and extreme numerics.
MIXED_DTYPES = [
    DataType.INTEGER,
    DataType.FLOAT,
    DataType.TEXT,
    DataType.BOOLEAN,
    DataType.DATE,
]
MIXED_ROWS = [
    (1, 1.5, "héllo wörld", True, 19_000),
    (None, None, None, None, None),
    (-(2**62), -0.0, "", False, 0),
    (7, 2.5e300, "日本語のテキスト", None, -3),
    (None, 0.125, "tab\tand\nnewline", True, None),
    (42, None, "ascii", False, 11_111),
]


def encode_mixed(frame_bytes: int, encoding: str, rows=MIXED_ROWS):
    batch, names = rows_to_batch(rows, MIXED_DTYPES)
    if encoding == ENCODING_BINARY:
        frames = list(
            iter_binary_row_frames(5, batch, names, MIXED_DTYPES, frame_bytes)
        )
    else:
        frames = list(
            iter_row_frames(5, batch_rows(batch, names), frame_bytes)
        )
    return frames, names


BOTH_ENCODINGS = [ENCODING_JSON, ENCODING_BINARY]


class TestRowFramesBothEncodings:
    """The ISSUE's splitting edge cases, asserted for json and binary,
    plus value-identical decoding between the two."""

    @pytest.mark.parametrize("encoding", BOTH_ENCODINGS)
    def test_unicode_and_null_heavy_rows_round_trip(self, encoding):
        frames, names = encode_mixed(1 << 20, encoding)
        assert decode_frames(frames, names, MIXED_DTYPES) == MIXED_ROWS

    def test_json_and_binary_decode_to_identical_rows(self):
        json_frames, names = encode_mixed(1 << 20, ENCODING_JSON)
        bin_frames, _ = encode_mixed(1 << 20, ENCODING_BINARY)
        assert decode_frames(
            json_frames, names, MIXED_DTYPES
        ) == decode_frames(bin_frames, names, MIXED_DTYPES)

    @pytest.mark.parametrize("encoding", BOTH_ENCODINGS)
    def test_empty_batch_yields_no_frames(self, encoding):
        frames, _ = encode_mixed(1 << 20, encoding, rows=[])
        assert frames == []

    @pytest.mark.parametrize("encoding", BOTH_ENCODINGS)
    def test_single_row_larger_than_frame_bytes_still_sent(self, encoding):
        rows = [(1, 2.0, "x" * 10_000, True, 3)]
        frames, names = encode_mixed(1024, encoding, rows=rows)
        assert len(frames) == 1  # unsplittable: oversized but delivered
        assert len(frames[0]) > 1024
        assert decode_frames(frames, names, MIXED_DTYPES) == rows

    @pytest.mark.parametrize("encoding", BOTH_ENCODINGS)
    def test_split_frames_stay_under_bound_and_preserve_order(
        self, encoding
    ):
        rows = [
            (i, i * 0.5, f"value-{i:06d}-ü", i % 2 == 0, i)
            for i in range(500)
        ]
        frames, names = encode_mixed(2048, encoding, rows=rows)
        assert len(frames) > 1
        assert all(len(f) <= 2048 for f in frames)
        assert decode_frames(frames, names, MIXED_DTYPES) == rows

    @pytest.mark.parametrize("encoding", BOTH_ENCODINGS)
    def test_batch_exactly_at_the_boundary_is_one_frame(self, encoding):
        # Learn the exact single-frame size, then re-encode with the
        # bound set exactly there: still one frame, exactly full.
        frames, names = encode_mixed(1 << 20, encoding)
        assert len(frames) == 1
        exact = len(frames[0])
        refit, _ = encode_mixed(exact, encoding)
        assert len(refit) == 1
        assert len(refit[0]) == exact
        # One byte less and the packing must split.
        split, _ = encode_mixed(exact - 1, encoding)
        assert len(split) > 1
        assert decode_frames(split, names, MIXED_DTYPES) == MIXED_ROWS


class TestBinaryCodec:
    def test_projection_less_batch_keeps_row_count(self):
        batch = Batch({}, num_rows=4)
        frames = list(iter_binary_row_frames(1, batch, [], [], 1 << 20))
        assert len(frames) == 1
        _, payload = read_frame_blocking(io.BytesIO(frames[0]), 1 << 20)
        decoded = decode_binary_rows(payload["data"], [], [])
        assert decoded.num_rows == 4 and decoded.columns == {}

    def test_column_count_mismatch_rejected(self):
        frames, names = encode_mixed(1 << 20, ENCODING_BINARY)
        _, payload = read_frame_blocking(io.BytesIO(frames[0]), 1 << 20)
        with pytest.raises(ProtocolError, match="columns"):
            decode_binary_rows(payload["data"], names[:2], MIXED_DTYPES[:2])

    def test_type_tag_mismatch_rejected(self):
        frames, names = encode_mixed(1 << 20, ENCODING_BINARY)
        _, payload = read_frame_blocking(io.BytesIO(frames[0]), 1 << 20)
        shuffled = [MIXED_DTYPES[-1]] + MIXED_DTYPES[1:-1] + [MIXED_DTYPES[0]]
        with pytest.raises(ProtocolError, match="tag"):
            decode_binary_rows(payload["data"], names, shuffled)

    def test_truncated_payload_rejected(self):
        frames, names = encode_mixed(1 << 20, ENCODING_BINARY)
        _, payload = read_frame_blocking(io.BytesIO(frames[0]), 1 << 20)
        with pytest.raises(ProtocolError):
            decode_binary_rows(payload["data"][:-9], names, MIXED_DTYPES)

    def test_trailing_garbage_rejected(self):
        frames, names = encode_mixed(1 << 20, ENCODING_BINARY)
        _, payload = read_frame_blocking(io.BytesIO(frames[0]), 1 << 20)
        with pytest.raises(ProtocolError, match="trailing"):
            decode_binary_rows(
                payload["data"] + b"\x00", names, MIXED_DTYPES
            )


class TestEncodingNegotiation:
    def test_binary_when_both_sides_want_it(self):
        assert (
            negotiate_encoding(["binary", "json"], "binary")
            == ENCODING_BINARY
        )

    def test_json_floor_when_server_pins_json(self):
        assert negotiate_encoding(["binary", "json"], "json") == ENCODING_JSON

    def test_json_floor_when_client_offers_nothing_known(self):
        assert negotiate_encoding([], "binary") == ENCODING_JSON
        assert negotiate_encoding(["zstd"], "binary") == ENCODING_JSON

    def test_v1_style_offer_is_json(self):
        assert negotiate_encoding(["json"], "binary") == ENCODING_JSON


class TestWireCodes:
    @pytest.mark.parametrize(
        "exc, code",
        [
            (AdmissionError("x"), "admission"),
            (StreamLimitError("x"), "stream_limit"),
            (CursorTimeoutError("x"), "cursor_timeout"),
            (CursorInvalidError("x"), "cursor_invalid"),
            (CatalogError("x"), "catalog"),
            (SQLSyntaxError("x"), "sql_syntax"),
            (ExecutionError("x"), "execution"),
            (ProtocolError("x"), "protocol"),
            (ReproError("x"), "internal"),
            (ValueError("x"), "internal"),  # outside the hierarchy
        ],
    )
    def test_code_for_exception(self, exc, code):
        assert wire_code_for(exc) == code

    def test_roundtrip_reconstructs_class_and_message(self):
        exc = error_from_wire(
            wire_code_for(AdmissionError("overloaded")), "overloaded"
        )
        assert isinstance(exc, AdmissionError)
        assert str(exc) == "overloaded"

    def test_unknown_code_degrades_to_repro_error(self):
        exc = error_from_wire("from_the_future", "boom")
        assert type(exc) is ReproError
        assert "from_the_future" in str(exc) and "boom" in str(exc)

    def test_fresh_copy_preserves_attributes(self):
        from repro.errors import RawDataError

        original = RawDataError("bad row", row=17)
        duplicate = fresh_copy(original)
        assert duplicate is not original
        assert isinstance(duplicate, RawDataError)
        assert str(duplicate) == "bad row" and duplicate.row == 17
        assert duplicate.__traceback__ is None
