"""Unit tests for planner internals: expression rewriting, pushdown
classification and projection pruning (observed through EXPLAIN)."""

import pytest

from repro import (
    Column,
    DataType,
    PostgresRaw,
    TableSchema,
    write_csv,
)
from repro.sql.ast import (
    ColumnRef,
    Literal,
    expr_to_sql,
)
from repro.sql.parser import parse_select
from repro.sql.planner import transform_expr


class TestTransformExpr:
    def _expr(self, fragment):
        return parse_select(f"SELECT {fragment}").items[0].expr

    def test_identity_clones(self):
        original = self._expr("a + b * 2")
        clone = transform_expr(original, lambda node: None)
        assert clone is not original
        assert expr_to_sql(clone) == expr_to_sql(original)

    def test_replacement_by_signature(self):
        original = self._expr("a + b")

        def replace(node):
            if isinstance(node, ColumnRef) and node.name == "a":
                return Literal(42, DataType.INTEGER)
            return None

        rewritten = transform_expr(original, replace)
        assert expr_to_sql(rewritten) == "(42 + b)"
        # Original untouched.
        assert expr_to_sql(original) == "(a + b)"

    def test_nested_structures(self):
        original = self._expr("a BETWEEN 1 AND 2 AND s LIKE 'x%' AND b IN (1)")
        rewritten = transform_expr(
            original,
            lambda node: ColumnRef("z")
            if isinstance(node, ColumnRef) and node.name == "a"
            else None,
        )
        assert "z BETWEEN" in expr_to_sql(rewritten).replace("(", "")


@pytest.fixture
def two_tables(tmp_path):
    eng = PostgresRaw()
    left = TableSchema(
        [
            Column("id", DataType.INTEGER),
            Column("x", DataType.INTEGER),
            Column("pad", DataType.TEXT),
        ]
    )
    write_csv(tmp_path / "l.csv", [(1, 10, "a"), (2, 20, "b")], left)
    eng.register_csv("l", tmp_path / "l.csv", left)
    right = TableSchema(
        [Column("id", DataType.INTEGER), Column("y", DataType.INTEGER)]
    )
    write_csv(tmp_path / "r.csv", [(1, 100), (3, 300)], right)
    eng.register_csv("r", tmp_path / "r.csv", right)
    return eng


class TestPushdownClassification:
    def test_single_table_conjuncts_pushed(self, two_tables):
        plan = two_tables.explain(
            "SELECT l.x FROM l JOIN r ON l.id = r.id "
            "WHERE l.x > 5 AND r.y < 500"
        )
        scans = [line for line in plan.splitlines() if "RawScan" in line]
        assert any("x > 5" in s for s in scans)
        assert any("y < 500" in s for s in scans)
        assert "Filter" not in plan.replace("filter:", "")

    def test_non_equi_cross_table_is_residual(self, two_tables):
        plan = two_tables.explain(
            "SELECT l.x FROM l JOIN r ON l.id = r.id WHERE l.x < r.y"
        )
        assert "Filter" in plan
        result = two_tables.query(
            "SELECT l.x FROM l JOIN r ON l.id = r.id WHERE l.x < r.y"
        )
        assert result.column("x") == [10]

    def test_constant_conjunct_is_residual(self, two_tables):
        result = two_tables.query("SELECT x FROM l WHERE 1 = 1 ORDER BY x")
        assert result.column("x") == [10, 20]
        result = two_tables.query("SELECT x FROM l WHERE 1 = 2")
        assert len(result) == 0

    def test_or_predicate_not_split(self, two_tables):
        plan = two_tables.explain(
            "SELECT l.x FROM l JOIN r ON l.id = r.id "
            "WHERE l.x > 5 OR l.x < 0"
        )
        # The OR stays one pushed conjunct on l's scan.
        scans = [line for line in plan.splitlines() if "RawScan(l" in line]
        assert "OR" in scans[0]


class TestProjectionPruning:
    def test_untouched_columns_not_scanned(self, two_tables):
        plan = two_tables.explain("SELECT x FROM l WHERE id = 1")
        scan = [l for l in plan.splitlines() if "RawScan" in l][0]
        assert "pad" not in scan  # TEXT column never requested

    def test_count_star_scans_zero_columns(self, two_tables):
        plan = two_tables.explain("SELECT COUNT(*) FROM l")
        scan = [l for l in plan.splitlines() if "RawScan" in l][0]
        assert "RawScan(l -> )" in scan

    def test_join_keys_included(self, two_tables):
        plan = two_tables.explain(
            "SELECT l.pad FROM l JOIN r ON l.id = r.id"
        )
        l_scan = [l for l in plan.splitlines() if "RawScan(l" in l][0]
        assert "id" in l_scan and "pad" in l_scan
        assert " x" not in l_scan


class TestOutputNaming:
    def test_duplicate_output_names_deduplicated(self, two_tables):
        result = two_tables.query("SELECT x, x FROM l ORDER BY 1")
        assert result.column_names == ["x", "x_2"]

    def test_expression_output_name(self, two_tables):
        result = two_tables.query("SELECT x + 1 FROM l ORDER BY 1")
        # Derived from the resolved expression text.
        assert "x + 1" in result.column_names[0]

    def test_qualified_star_duplicates(self, two_tables):
        result = two_tables.query(
            "SELECT * FROM l JOIN r ON l.id = r.id"
        )
        assert "l.id" in result.column_names
        assert "r.id" in result.column_names
        assert "x" in result.column_names  # unique plain names stay plain
