"""Unit tests for the SQL lexer and parser."""

import pytest

from repro.datatypes import DataType
from repro.errors import SQLSyntaxError
from repro.sql.ast import (
    Between,
    BinaryOp,
    ColumnRef,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Star,
    UnaryOp,
    conjoin,
    contains_aggregate,
    expr_column_refs,
    expr_to_sql,
    split_conjuncts,
)
from repro.sql.lexer import TokenKind, tokenize_sql
from repro.sql.parser import parse_select


class TestLexer:
    def test_keywords_and_idents(self):
        tokens = tokenize_sql("SELECT foo FROM Bar")
        kinds = [t.kind for t in tokens]
        assert kinds[:4] == [
            TokenKind.KEYWORD,
            TokenKind.IDENT,
            TokenKind.KEYWORD,
            TokenKind.IDENT,
        ]
        assert tokens[3].text == "bar"  # lower-cased

    def test_numbers(self):
        tokens = tokenize_sql("1 2.5 1e3")
        assert [t.text for t in tokens[:-1]] == ["1", "2.5", "1e3"]

    def test_string_escapes(self):
        tokens = tokenize_sql("'it''s'")
        assert tokens[0].kind is TokenKind.STRING
        assert tokens[0].text == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SQLSyntaxError):
            tokenize_sql("SELECT 'oops")

    def test_comments_skipped(self):
        tokens = tokenize_sql("SELECT 1 -- a comment\n + 2")
        texts = [t.text for t in tokens if t.kind is not TokenKind.EOF]
        assert texts == ["select", "1", "+", "2"]

    def test_multi_char_operators(self):
        tokens = tokenize_sql("a <= b <> c || d")
        ops = [t.text for t in tokens if t.kind is TokenKind.OP]
        assert ops == ["<=", "<>", "||"]

    def test_delimited_identifier_preserves_case(self):
        tokens = tokenize_sql('"MyCol"')
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[0].text == "MyCol"

    def test_unexpected_character(self):
        with pytest.raises(SQLSyntaxError) as exc:
            tokenize_sql("SELECT a ~ b")
        assert exc.value.position == 9


class TestParserBasics:
    def test_simple_select(self):
        stmt = parse_select("SELECT a, b FROM t")
        assert len(stmt.items) == 2
        assert stmt.from_table.name == "t"
        assert isinstance(stmt.items[0].expr, ColumnRef)

    def test_star(self):
        stmt = parse_select("SELECT * FROM t")
        assert isinstance(stmt.items[0].expr, Star)

    def test_aliases(self):
        stmt = parse_select("SELECT a AS x, b y FROM t u")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.from_table.alias == "u"

    def test_qualified_column(self):
        stmt = parse_select("SELECT t.a FROM t")
        ref = stmt.items[0].expr
        assert ref.table == "t" and ref.name == "a"
        assert ref.key == "t.a"

    def test_no_from(self):
        stmt = parse_select("SELECT 1 + 1")
        assert stmt.from_table is None

    def test_limit_offset(self):
        stmt = parse_select("SELECT a FROM t LIMIT 10 OFFSET 5")
        assert stmt.limit == 10 and stmt.offset == 5

    def test_limit_requires_integer(self):
        with pytest.raises(SQLSyntaxError):
            parse_select("SELECT a FROM t LIMIT 2.5")

    def test_distinct(self):
        assert parse_select("SELECT DISTINCT a FROM t").distinct

    def test_trailing_garbage_raises(self):
        with pytest.raises(SQLSyntaxError):
            parse_select("SELECT a FROM t WHERE")
        with pytest.raises(SQLSyntaxError):
            parse_select("SELECT a FROM t extra stuff ,")

    def test_semicolon_accepted(self):
        parse_select("SELECT a FROM t;")


class TestParserExpressions:
    def _where(self, sql_pred):
        return parse_select(f"SELECT a FROM t WHERE {sql_pred}").where

    def test_precedence_and_or(self):
        expr = self._where("a = 1 OR b = 2 AND c = 3")
        assert isinstance(expr, BinaryOp) and expr.op == "or"
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "and"

    def test_arithmetic_precedence(self):
        expr = self._where("a + b * 2 = 7")
        assert expr.op == "="
        assert expr.left.op == "+"
        assert expr.left.right.op == "*"

    def test_parentheses(self):
        expr = self._where("(a + b) * 2 = 7")
        assert expr.left.op == "*"

    def test_comparison_normalization(self):
        assert self._where("a != 1").op == "<>"

    def test_unary_minus_folds_literal(self):
        expr = self._where("a = -5")
        assert isinstance(expr.right, Literal)
        assert expr.right.value == -5

    def test_not(self):
        expr = self._where("NOT a = 1")
        assert isinstance(expr, UnaryOp) and expr.op == "not"

    def test_between(self):
        expr = self._where("a BETWEEN 1 AND 10")
        assert isinstance(expr, Between) and not expr.negated
        expr = self._where("a NOT BETWEEN 1 AND 10")
        assert expr.negated

    def test_in_list(self):
        expr = self._where("a IN (1, 2, 3)")
        assert isinstance(expr, InList)
        assert [i.value for i in expr.items] == [1, 2, 3]
        assert self._where("a NOT IN (1)").negated

    def test_like(self):
        expr = self._where("s LIKE 'ab%'")
        assert isinstance(expr, Like) and expr.pattern == "ab%"
        assert self._where("s NOT LIKE 'x'").negated
        with pytest.raises(SQLSyntaxError):
            self._where("s LIKE 5")

    def test_is_null(self):
        assert isinstance(self._where("a IS NULL"), IsNull)
        assert self._where("a IS NOT NULL").negated

    def test_literals(self):
        stmt = parse_select(
            "SELECT 1, 2.5, 'txt', TRUE, FALSE, NULL, DATE '2012-08-27'"
        )
        values = [item.expr for item in stmt.items]
        assert values[0].dtype is DataType.INTEGER
        assert values[1].dtype is DataType.FLOAT
        assert values[2].value == "txt"
        assert values[3].value is True
        assert values[5].value is None
        assert values[6].dtype is DataType.DATE

    def test_date_literal_requires_string(self):
        with pytest.raises(SQLSyntaxError):
            parse_select("SELECT DATE 5")

    def test_functions(self):
        stmt = parse_select(
            "SELECT COUNT(*), SUM(a), AVG(a + b), COUNT(DISTINCT c) FROM t"
        )
        count_star = stmt.items[0].expr
        assert isinstance(count_star, FunctionCall)
        assert isinstance(count_star.args[0], Star)
        assert stmt.items[3].expr.distinct

    def test_unknown_function(self):
        with pytest.raises(SQLSyntaxError):
            parse_select("SELECT MEDIAN(a) FROM t")

    def test_scalar_functions(self):
        stmt = parse_select("SELECT LOWER(s), LENGTH(s), ABS(a) FROM t")
        assert [i.expr.name for i in stmt.items] == ["lower", "length", "abs"]


class TestParserClauses:
    def test_joins(self):
        stmt = parse_select(
            "SELECT * FROM a JOIN b ON a.k = b.k "
            "LEFT JOIN c ON b.j = c.j INNER JOIN d ON d.x = a.x"
        )
        assert [j.kind for j in stmt.joins] == ["inner", "left", "inner"]
        assert stmt.joins[1].table.name == "c"

    def test_left_outer_join(self):
        stmt = parse_select("SELECT * FROM a LEFT OUTER JOIN b ON a.k = b.k")
        assert stmt.joins[0].kind == "left"

    def test_group_by_having(self):
        stmt = parse_select(
            "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2"
        )
        assert len(stmt.group_by) == 1
        assert stmt.having is not None

    def test_order_by(self):
        stmt = parse_select("SELECT a, b FROM t ORDER BY a DESC, b ASC, a + b")
        assert [o.ascending for o in stmt.order_by] == [False, True, True]


class TestAstUtilities:
    def test_split_and_conjoin(self):
        expr = parse_select(
            "SELECT a FROM t WHERE a = 1 AND b = 2 AND c = 3"
        ).where
        conjuncts = split_conjuncts(expr)
        assert len(conjuncts) == 3
        rebuilt = conjoin(conjuncts)
        assert expr_to_sql(rebuilt) == expr_to_sql(expr)
        assert split_conjuncts(None) == []
        assert conjoin([]) is None

    def test_expr_column_refs(self):
        expr = parse_select("SELECT a FROM t WHERE x + y > t.z").where
        names = sorted(r.name for r in expr_column_refs(expr))
        assert names == ["x", "y", "z"]

    def test_contains_aggregate(self):
        expr = parse_select("SELECT SUM(a) + 1 FROM t").items[0].expr
        assert contains_aggregate(expr)
        plain = parse_select("SELECT a + 1 FROM t").items[0].expr
        assert not contains_aggregate(plain)

    def test_expr_to_sql_roundtrip_through_parser(self):
        sources = [
            "((a + 1) > 2)",
            "(a BETWEEN 1 AND 2)",
            "(s LIKE 'x%')",
            "(a IN (1, 2))",
            "(a IS NOT NULL)",
            "(NOT (a = 1))",
            "COUNT(*)",
        ]
        for source in sources:
            stmt = parse_select(f"SELECT 1 FROM t WHERE {source}")
            rendered = expr_to_sql(stmt.where)
            stmt2 = parse_select(f"SELECT 1 FROM t WHERE {rendered}")
            assert expr_to_sql(stmt2.where) == rendered

    def test_text_literal_escaping(self):
        assert expr_to_sql(Literal("it's", DataType.TEXT)) == "'it''s'"
