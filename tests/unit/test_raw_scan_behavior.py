"""Behavioural tests for the RawScan operator: what gets learned,
cached, jumped over and charged where."""

import pytest

from repro import (
    PostgresRaw,
    PostgresRawConfig,
    generate_csv,
    uniform_table_spec,
)


@pytest.fixture
def fresh(tmp_path):
    """Factory: a new engine over a fresh 2000x8 file per test."""

    def make(config=None, n_attrs=8, n_rows=2000):
        path = tmp_path / f"t_{n_attrs}x{n_rows}.csv"
        schema = generate_csv(
            path, uniform_table_spec(n_attrs, n_rows, seed=17)
        )
        eng = PostgresRaw(config)
        eng.register_csv("t", path, schema)
        return eng

    return make


class TestPositionalMapLearning:
    def test_map_learns_along_the_way(self, fresh):
        """Requesting attr 5 records positions 0..5(+1) — 'all positions
        from 1 to 15 may be kept'."""
        eng = fresh()
        eng.query("SELECT a5 FROM t")
        chunks = eng.table_state("t").positional_map.describe()
        assert chunks[0]["attrs"] == (0, 1, 2, 3, 4, 5, 6)

    def test_last_attr_has_no_sentinel(self, fresh):
        eng = fresh()
        eng.query("SELECT a7 FROM t")
        chunks = eng.table_state("t").positional_map.describe()
        assert chunks[0]["attrs"] == (0, 1, 2, 3, 4, 5, 6, 7)

    def test_second_query_uses_map_not_tokenizer(self, fresh):
        eng = fresh()
        eng.query("SELECT a3 FROM t")
        r2 = eng.query("SELECT a2 FROM t")  # inside the learned span
        assert r2.metrics.tokenizing_seconds == 0.0
        assert r2.metrics.fields_tokenized == 0
        assert r2.metrics.fields_parsed_via_map > 0

    def test_anchor_jump_tokenizes_only_gap(self, fresh):
        eng = fresh()
        eng.query("SELECT a2 FROM t")  # map knows 0..3
        r2 = eng.query("SELECT a5 FROM t")  # anchor at 3, tokenize 3..5
        n_rows = 2000
        assert r2.metrics.fields_tokenized == n_rows * 3  # attrs 3,4,5

    def test_combination_policy_builds_requested_chunk(self, fresh):
        eng = fresh()
        eng.query("SELECT a1 FROM t")
        eng.query("SELECT a6 FROM t")  # separate chunk (anchored)
        pm = eng.table_state("t").positional_map
        before = {c.attrs for c in pm.chunks()}
        eng.query("SELECT a1, a6 FROM t")  # attrs in different chunks
        after = {c.attrs for c in pm.chunks()}
        assert (1, 6) in after - before

    def test_combination_policy_disabled(self, fresh):
        eng = fresh(
            PostgresRawConfig(pm_combination_policy=False)
        )
        eng.query("SELECT a1 FROM t")
        eng.query("SELECT a6 FROM t")
        eng.query("SELECT a1, a6 FROM t")
        pm = eng.table_state("t").positional_map
        assert (1, 6) not in {c.attrs for c in pm.chunks()}

    def test_pm_disabled_never_learns(self, fresh):
        eng = fresh(PostgresRawConfig(enable_positional_map=False))
        eng.query("SELECT a3 FROM t")
        r2 = eng.query("SELECT a3 FROM t")
        # Without a map (or cache hit) tokenizing repeats in full.
        assert eng.table_state("t").positional_map.chunk_count == 0


class TestCacheBehavior:
    def test_full_scan_populates_cache(self, fresh):
        eng = fresh()
        eng.query("SELECT a1 FROM t")
        cache = eng.table_state("t").cache
        assert cache.coverage_rows(1) == 2000

    def test_cached_query_reads_no_bytes(self, fresh):
        eng = fresh()
        eng.query("SELECT a1 FROM t")
        r2 = eng.query("SELECT a1 FROM t")
        assert r2.metrics.bytes_read == 0
        assert r2.metrics.io_seconds == 0.0
        assert r2.metrics.convert_seconds == 0.0

    def test_only_requested_attributes_cached(self, fresh):
        eng = fresh()
        eng.query("SELECT a4 FROM t")
        cache = eng.table_state("t").cache
        # a0..a3 were tokenized along the way but never converted.
        assert cache.cached_attrs() == [4]

    def test_selective_formation_does_not_cache_projection(self, fresh):
        eng = fresh()
        # ~10% selectivity: projection attr converted only for matches.
        eng.query("SELECT a5 FROM t WHERE a0 < 100000")
        cache = eng.table_state("t").cache
        assert 0 in cache.cached_attrs()  # predicate column: full
        assert 5 not in cache.cached_attrs()

    def test_eager_formation_caches_projection(self, fresh):
        eng = fresh(PostgresRawConfig(selective_tuple_formation=False))
        eng.query("SELECT a5 FROM t WHERE a0 < 100000")
        assert 5 in eng.table_state("t").cache.cached_attrs()

    def test_cache_disabled(self, fresh):
        eng = fresh(PostgresRawConfig(enable_cache=False))
        eng.query("SELECT a1 FROM t")
        assert eng.table_state("t").cache.entry_count == 0


class TestSelectiveKnobs:
    def test_selective_tokenizing_off_tokenizes_full_tuple(self, fresh):
        eng_on = fresh()
        r_on = eng_on.query("SELECT a1 FROM t")
        assert r_on.metrics.fields_tokenized == 2000 * 2  # attrs 0,1

        eng_off = fresh(PostgresRawConfig(selective_tokenizing=False))
        r = eng_off.query("SELECT a1 FROM t")
        assert r.metrics.fields_tokenized == 2000 * 8  # whole tuples

    def test_selective_parsing_off_converts_everything(self, fresh):
        eng = fresh(PostgresRawConfig(selective_parsing=False))
        r = eng.query("SELECT a5 FROM t")
        # attrs 0..5 tokenized; all converted although only a5 needed.
        assert r.metrics.fields_converted == 2000 * 6

    def test_selective_parsing_on_converts_only_needed(self, fresh):
        eng = fresh()
        r = eng.query("SELECT a5 FROM t")
        assert r.metrics.fields_converted == 2000

    def test_statistics_only_on_requested(self, fresh):
        eng = fresh()
        eng.query("SELECT a2 FROM t WHERE a1 > 0")
        stats = eng.table_state("t").statistics
        assert set(stats.attribute_names()) == {"a1", "a2"}

    def test_statistics_disabled(self, fresh):
        eng = fresh(PostgresRawConfig(enable_statistics=False))
        eng.query("SELECT a2 FROM t")
        assert eng.table_state("t").statistics.attribute_names() == []


class TestCounters:
    def test_cache_hit_miss_counters(self, fresh):
        eng = fresh()
        r1 = eng.query("SELECT a1 FROM t")
        assert r1.metrics.cache_hits == 0
        assert r1.metrics.cache_misses >= 1
        r2 = eng.query("SELECT a1 FROM t")
        assert r2.metrics.cache_hits >= 1
        assert r2.metrics.cache_misses == 0

    def test_pm_hit_counters(self, fresh):
        eng = fresh(PostgresRawConfig(enable_cache=False))
        eng.query("SELECT a1 FROM t")
        r2 = eng.query("SELECT a1 FROM t")
        assert r2.metrics.pm_chunk_hits >= 1

    def test_usage_tracking(self, fresh):
        eng = fresh()
        eng.query("SELECT a1 FROM t WHERE a0 > 0")
        eng.query("SELECT a1 FROM t")
        usage = eng.table_state("t").attribute_usage
        assert usage[1] == 2
        assert usage[0] == 1


class TestLimitsAndPartialScans:
    def test_limit_query_learns_prefix(self, fresh):
        eng = fresh(PostgresRawConfig(batch_size=256))
        eng.query("SELECT a1 FROM t LIMIT 10")
        pm = eng.table_state("t").positional_map
        assert 0 < pm.coverage_rows(1) < 2000

    def test_prefix_then_full(self, fresh):
        eng = fresh(PostgresRawConfig(batch_size=256))
        eng.query("SELECT a1 FROM t LIMIT 10")
        result = eng.query("SELECT COUNT(a1) AS n FROM t")
        assert result.scalar() == 2000
        assert eng.table_state("t").cache.coverage_rows(1) == 2000


class TestCorrectnessUnderConfigs:
    @pytest.mark.parametrize(
        "config",
        [
            PostgresRawConfig(),
            PostgresRawConfig.baseline(),
            PostgresRawConfig.pm_only(),
            PostgresRawConfig.cache_only(),
            PostgresRawConfig(selective_tokenizing=False),
            PostgresRawConfig(selective_parsing=False),
            PostgresRawConfig(selective_tuple_formation=False),
            PostgresRawConfig(batch_size=77),
        ],
        ids=[
            "full",
            "baseline",
            "pm_only",
            "cache_only",
            "no_sel_tok",
            "no_sel_parse",
            "no_sel_form",
            "odd_batch",
        ],
    )
    def test_same_answers_any_config(self, fresh, config):
        eng = fresh(config)
        queries = [
            "SELECT a0, a5 FROM t WHERE a2 < 300000 ORDER BY a0 LIMIT 7",
            "SELECT COUNT(*) AS n FROM t WHERE a1 BETWEEN 100000 AND 500000",
            "SELECT SUM(a3) AS s FROM t",
        ]
        expected = [
            list(fresh(PostgresRawConfig()).query(q)) for q in queries
        ]
        for q, exp in zip(queries, expected):
            # Run twice: cold and warm must agree.
            assert list(eng.query(q)) == exp
            assert list(eng.query(q)) == exp
