"""Unit tests for the type system and text<->binary conversion."""

import datetime

import numpy as np
import pytest

from repro.datatypes import (
    DataType,
    convert_column,
    date_to_days,
    days_to_date,
    format_scalar,
    measure_text_bytes,
    null_array,
    parse_boolean,
    parse_date,
    parse_scalar,
)
from repro.errors import ConversionError


class TestDataType:
    def test_from_name_aliases(self):
        assert DataType.from_name("INT") is DataType.INTEGER
        assert DataType.from_name("bigint") is DataType.INTEGER
        assert DataType.from_name("VARCHAR") is DataType.TEXT
        assert DataType.from_name("double") is DataType.FLOAT
        assert DataType.from_name("Bool") is DataType.BOOLEAN
        assert DataType.from_name(" date ") is DataType.DATE

    def test_from_name_unknown_raises(self):
        with pytest.raises(ConversionError):
            DataType.from_name("geometry")

    def test_numeric_flags(self):
        assert DataType.INTEGER.is_numeric
        assert DataType.FLOAT.is_numeric
        assert not DataType.TEXT.is_numeric
        assert not DataType.DATE.is_numeric

    def test_numpy_dtypes(self):
        assert DataType.INTEGER.numpy_dtype == np.dtype(np.int64)
        assert DataType.FLOAT.numpy_dtype == np.dtype(np.float64)
        assert DataType.TEXT.numpy_dtype == np.dtype(object)

    def test_binary_widths_positive(self):
        for dtype in DataType:
            assert dtype.binary_width > 0


class TestDates:
    def test_roundtrip(self):
        for iso in ("1970-01-01", "2012-08-27", "1969-12-31", "2100-02-28"):
            days = parse_date(iso)
            assert days_to_date(days).isoformat() == iso

    def test_epoch_is_zero(self):
        assert date_to_days(datetime.date(1970, 1, 1)) == 0

    def test_bad_date_raises(self):
        with pytest.raises(ConversionError):
            parse_date("2012-13-01")
        with pytest.raises(ConversionError):
            parse_date("not-a-date")
        with pytest.raises(ConversionError):
            parse_date("20120827")


class TestBooleans:
    @pytest.mark.parametrize("text", ["t", "true", "TRUE", "1", "yes", "Y"])
    def test_true_tokens(self, text):
        assert parse_boolean(text) is True

    @pytest.mark.parametrize("text", ["f", "false", "0", "no", "N"])
    def test_false_tokens(self, text):
        assert parse_boolean(text) is False

    def test_bad_boolean_raises(self):
        with pytest.raises(ConversionError):
            parse_boolean("maybe")


class TestParseScalar:
    def test_integer(self):
        assert parse_scalar("42", DataType.INTEGER) == 42
        assert parse_scalar("-7", DataType.INTEGER) == -7

    def test_float(self):
        assert parse_scalar("2.5", DataType.FLOAT) == 2.5

    def test_text_passthrough(self):
        assert parse_scalar("hello", DataType.TEXT) == "hello"

    def test_none_stays_none(self):
        assert parse_scalar(None, DataType.INTEGER) is None

    def test_date(self):
        assert parse_scalar("1970-01-02", DataType.DATE) == 1

    def test_bad_integer_raises(self):
        with pytest.raises(ConversionError):
            parse_scalar("4.5", DataType.INTEGER)


class TestFormatScalar:
    def test_roundtrip_with_parse(self):
        cases = [
            (123, DataType.INTEGER),
            (-1.5, DataType.FLOAT),
            ("txt", DataType.TEXT),
            (True, DataType.BOOLEAN),
            (parse_date("2012-08-27"), DataType.DATE),
        ]
        for value, dtype in cases:
            text = format_scalar(value, dtype)
            assert parse_scalar(text, dtype) == value

    def test_null_token(self):
        assert format_scalar(None, DataType.INTEGER) == ""
        assert format_scalar(None, DataType.TEXT, null_token="NULL") == "NULL"


class TestConvertColumn:
    def test_integers(self):
        values, mask = convert_column(["1", "2", "3"], DataType.INTEGER)
        assert values.tolist() == [1, 2, 3]
        assert not mask.any()

    def test_nulls_via_empty_token(self):
        values, mask = convert_column(["1", "", "3"], DataType.INTEGER)
        assert mask.tolist() == [False, True, False]
        assert values[0] == 1 and values[2] == 3

    def test_custom_null_token(self):
        values, mask = convert_column(
            ["1", "NA", "3"], DataType.INTEGER, null_token="NA"
        )
        assert mask.tolist() == [False, True, False]

    def test_none_entries_are_null(self):
        __, mask = convert_column([None, "x"], DataType.TEXT)
        assert mask.tolist() == [True, False]

    def test_text_column(self):
        values, mask = convert_column(["a", "", "c"], DataType.TEXT)
        assert values[0] == "a" and values[2] == "c"
        assert values[1] is None and mask[1]

    def test_error_reports_absolute_row(self):
        with pytest.raises(ConversionError) as exc:
            convert_column(["1", "x"], DataType.INTEGER, row_offset=100)
        assert exc.value.row == 101

    def test_dates_and_bools(self):
        values, __ = convert_column(
            ["1970-01-03", "1970-01-01"], DataType.DATE
        )
        assert values.tolist() == [2, 0]
        values, __ = convert_column(["true", "false"], DataType.BOOLEAN)
        assert values.tolist() == [True, False]

    def test_empty_input(self):
        values, mask = convert_column([], DataType.FLOAT)
        assert len(values) == 0 and len(mask) == 0


class TestHelpers:
    def test_null_array(self):
        values, mask = null_array(DataType.INTEGER, 4)
        assert mask.all() and len(values) == 4
        values, mask = null_array(DataType.TEXT, 2)
        assert values[0] is None

    def test_measure_text_bytes_scales_with_content(self):
        short = np.array(["a", "b"], dtype=object)
        long = np.array(["a" * 100, "b" * 100], dtype=object)
        assert measure_text_bytes(long) > measure_text_bytes(short)
        with_null = np.array([None, "ab"], dtype=object)
        assert measure_text_bytes(with_null) > 0
