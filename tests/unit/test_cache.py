"""Unit tests for the raw-data cache."""

import numpy as np

from repro.batch import ColumnVector
from repro.core.cache import RawDataCache
from repro.datatypes import DataType


def _vec(n, base=0):
    return ColumnVector(
        DataType.INTEGER,
        np.arange(base, base + n, dtype=np.int64),
        np.zeros(n, dtype=np.bool_),
    )


class TestPutGet:
    def test_roundtrip(self):
        cache = RawDataCache(budget_bytes=1 << 20)
        assert cache.put(3, _vec(10))
        entry = cache.get(3)
        assert entry is not None and entry.rows == 10
        assert entry.vector.to_pylist() == list(range(10))

    def test_miss(self):
        cache = RawDataCache(budget_bytes=1 << 20)
        assert cache.get(0) is None

    def test_replace_only_with_deeper_coverage(self):
        cache = RawDataCache(budget_bytes=1 << 20)
        cache.put(1, _vec(10))
        assert cache.put(1, _vec(5))  # shallower: kept as-is, still True
        assert cache.get(1).rows == 10
        assert cache.put(1, _vec(20))
        assert cache.get(1).rows == 20

    def test_utilization(self):
        cache = RawDataCache(budget_bytes=1000)
        assert cache.utilization() == 0.0
        cache.put(0, _vec(10))
        assert 0 < cache.utilization() <= 1.0
        empty = RawDataCache(budget_bytes=0)
        assert empty.utilization() == 0.0


class TestLRUBudget:
    def test_budget_never_exceeded(self):
        vec = _vec(100)
        per_entry = vec.nbytes()
        cache = RawDataCache(budget_bytes=per_entry * 2)
        for attr in range(5):
            cache.put(attr, _vec(100))
            assert cache.used_bytes <= cache.budget_bytes

    def test_lru_victim_order(self):
        vec_bytes = _vec(100).nbytes()
        cache = RawDataCache(budget_bytes=vec_bytes * 2)
        cache.tick()
        cache.put(0, _vec(100))
        cache.tick()
        cache.put(1, _vec(100))
        cache.tick()
        cache.get(0)  # refresh 0; 1 becomes LRU
        cache.put(2, _vec(100))
        assert cache.cached_attrs() == [0, 2]
        assert cache.evictions == 1

    def test_oversized_rejected(self):
        cache = RawDataCache(budget_bytes=10)
        assert not cache.put(0, _vec(1000))
        assert cache.rejected_insertions == 1
        assert cache.entry_count == 0

    def test_protected_not_evicted(self):
        vec_bytes = _vec(100).nbytes()
        cache = RawDataCache(budget_bytes=vec_bytes * 2)
        cache.put(0, _vec(100))
        cache.put(1, _vec(100))
        assert not cache.put(2, _vec(100), protected={0, 1})
        assert cache.cached_attrs() == [0, 1]

    def test_peek_does_not_refresh(self):
        vec_bytes = _vec(100).nbytes()
        cache = RawDataCache(budget_bytes=vec_bytes * 2)
        cache.tick()
        cache.put(0, _vec(100))
        cache.tick()
        cache.put(1, _vec(100))
        cache.tick()
        cache.peek(0)  # not a recency touch: 0 stays LRU
        cache.put(2, _vec(100))
        assert 0 not in cache.cached_attrs()


class TestExtend:
    def test_extend_appends_rows(self):
        cache = RawDataCache(budget_bytes=1 << 20)
        cache.put(0, _vec(5))
        assert cache.extend(0, _vec(3, base=5))
        entry = cache.get(0)
        assert entry.rows == 8
        assert entry.vector.to_pylist() == list(range(8))

    def test_extend_missing_entry(self):
        cache = RawDataCache(budget_bytes=1 << 20)
        assert not cache.extend(9, _vec(3))

    def test_extend_respects_budget(self):
        base = _vec(100)
        cache = RawDataCache(budget_bytes=base.nbytes() + 8)
        cache.put(0, base)
        assert not cache.extend(0, _vec(100))
        assert cache.get(0).rows == 100


class TestMaintenance:
    def test_invalidate(self):
        cache = RawDataCache(budget_bytes=1 << 20)
        cache.put(0, _vec(5))
        cache.invalidate()
        assert cache.entry_count == 0
        assert cache.coverage_rows(0) == 0

    def test_describe(self):
        cache = RawDataCache(budget_bytes=1 << 20)
        cache.put(2, _vec(4))
        info = cache.describe()
        assert info[0]["attr"] == 2 and info[0]["rows"] == 4
