"""Units for ``repro.kernels``: batch parser edges and fallback
identity, kernel-cache LRU eviction, and signature keying."""

import numpy as np
import pytest

from repro.datatypes import DataType, convert_column
from repro.errors import ConversionError
from repro.kernels import (
    ContentBuffer,
    KernelCache,
    convert_span,
    kernel_supported,
    make_signature,
)
from repro.rawio.dialect import CsvDialect
from repro.telemetry import MetricsRegistry


def _span(texts):
    """A ContentBuffer + char bounds laying out ``texts`` comma-joined."""
    cbuf = ContentBuffer(",".join(texts))
    starts, ends, pos = [], [], 0
    for t in texts:
        starts.append(pos)
        ends.append(pos + len(t))
        pos += len(t) + 1
    return cbuf, np.array(starts), np.array(ends)


class TestConvertSpan:
    @pytest.mark.parametrize(
        "texts,dtype",
        [
            # Fast-path integers, including sign and padding edges.
            (["0", "-1", "+2", "00042", str(10**17 - 1)], "integer"),
            # Fallback integers: 18+ digits, whitespace, underscores.
            ([str(10**17), "-" + "9" * 18, " 7 ", "1_0"], "integer"),
            # Fast-path floats, including dot-first/dot-last edges.
            (["3.14", "-0.0", ".5", "5.", "0.000001", "12345.6789"],
             "float"),
            # Fallback floats: exponents, >15 digits, specials.
            (["1e5", "-2E-3", "9" * 16 + ".0", "inf", "nan"], "float"),
        ],
    )
    def test_matches_legacy_converter(self, texts, dtype):
        dt = DataType(dtype)
        cbuf, starts, ends = _span(texts)
        values, nulls = convert_span(cbuf, starts, ends, dt)
        expected, exp_nulls = convert_column(texts, dt)
        assert np.array_equal(values, expected, equal_nan=True)
        assert np.array_equal(nulls, exp_nulls)

    def test_null_token_and_unicode_offsets(self):
        texts = ["１", "NULL", "42", "", "7"]
        cbuf, starts, ends = _span(texts)
        with pytest.raises(ConversionError) as kexc:
            convert_span(
                cbuf, starts, ends, DataType.INTEGER, null_token="NULL"
            )
        with pytest.raises(ConversionError) as lexc:
            convert_column(texts, DataType.INTEGER, null_token="NULL")
        assert str(kexc.value) == str(lexc.value)
        assert kexc.value.row == lexc.value.row

    def test_error_row_offset(self):
        texts = ["1", "x", "3"]
        cbuf, starts, ends = _span(texts)
        with pytest.raises(ConversionError) as exc:
            convert_span(
                cbuf, starts, ends, DataType.INTEGER, row_offset=100
            )
        assert exc.value.row == 101
        assert "row 101" in str(exc.value)

    def test_float_values_bit_identical(self):
        texts = [f"{v / 997:.6f}" for v in range(-4000, 4000, 7)]
        cbuf, starts, ends = _span(texts)
        values, _ = convert_span(cbuf, starts, ends, DataType.FLOAT)
        assert values.tolist() == [float(t) for t in texts]


class TestKernelCache:
    DIALECT = CsvDialect()
    DTYPES = (DataType.INTEGER, DataType.TEXT)

    def sig(self, first, last):
        return make_signature(self.DIALECT, self.DTYPES, first, last)

    def test_lru_eviction(self):
        cache = KernelCache(max_entries=2)
        s0, s1, s2 = self.sig(0, 0), self.sig(0, 1), self.sig(1, 1)
        cache.get(s0)
        cache.get(s1)
        cache.get(s0)  # s0 now most-recent
        cache.get(s2)  # evicts s1
        assert s1 not in cache
        assert s0 in cache and s2 in cache
        assert cache.evictions == 1
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["misses"] == 3
        assert stats["hits"] == 1

    def test_hit_returns_same_kernel_and_zero_build(self):
        cache = KernelCache()
        k1, built1 = cache.get(self.sig(0, 1))
        k2, built2 = cache.get(self.sig(0, 1))
        assert k1 is k2
        assert built1 > 0.0 and built2 == 0.0

    def test_signature_keying_distinguishes_spans_and_schemas(self):
        cache = KernelCache()
        k_a, _ = cache.get(self.sig(0, 1))
        k_b, _ = cache.get(self.sig(0, 0))
        other_schema = make_signature(
            self.DIALECT, (DataType.FLOAT, DataType.TEXT), 0, 1
        )
        k_c, _ = cache.get(other_schema)
        assert len({id(k_a), id(k_b), id(k_c)}) == 3
        # Equal inputs produce an equal (hashable) signature.
        assert self.sig(0, 1) == make_signature(
            self.DIALECT, self.DTYPES, 0, 1
        )

    def test_registry_counters(self):
        registry = MetricsRegistry(enabled=True)
        cache = KernelCache(max_entries=4, registry=registry)
        cache.get(self.sig(0, 1))
        cache.get(self.sig(0, 1))
        snap = registry.snapshot()
        assert snap["counters"]["kernel_cache_misses"] == 1
        assert snap["counters"]["kernel_cache_hits"] == 1
        assert snap["counters"]["kernel_build_seconds_total"] > 0.0


class TestKernelSupported:
    def test_quoted_dialect_keeps_legacy_path(self):
        assert kernel_supported(CsvDialect())
        assert not kernel_supported(CsvDialect(quote_char='"'))
        assert not kernel_supported(CsvDialect(delimiter="§"))
