"""Deterministic placement and raw-file partitioning.

The core contract: shard files are a byte-partition of the original
(lines routed verbatim, CSV header replicated), and placement agrees
byte-for-byte between the coordinator and any future client process.
"""

from __future__ import annotations

import zlib

import pytest

from repro import Column, DataType, PartitionSpec, TableSchema, write_csv
from repro.errors import ShardingError
from repro.rawio.dialect import CsvDialect
from repro.rawio.writer import write_jsonl
from repro.sharding import (
    append_rows_partitioned,
    derive_range_bounds,
    key_bytes,
    partition_file,
    shard_of,
)


@pytest.fixture
def schema():
    return TableSchema(
        [
            Column("id", DataType.INTEGER),
            Column("name", DataType.TEXT),
            Column("score", DataType.FLOAT),
        ]
    )


@pytest.fixture
def rows():
    return [
        (i, f"name{i % 7}", i * 1.5 if i % 5 else None)
        for i in range(200)
    ]


# ----------------------------------------------------------------------
# key_bytes / shard_of.
# ----------------------------------------------------------------------


def test_key_bytes_is_typed_and_deterministic():
    assert key_bytes(42) == b"i42"
    assert key_bytes("42") == b"s42"  # text 42 is not integer 42
    assert key_bytes(None) == b"\x00null"
    assert key_bytes("") == b"s"
    assert key_bytes(1.25) == b"f1.25"


def test_key_bytes_collapses_integral_floats():
    """SQL `id = 7` must route like the file's 7.0 (and vice versa)."""
    assert key_bytes(7.0) == key_bytes(7)
    assert key_bytes(True) == key_bytes(1)
    assert key_bytes(-0.0) == key_bytes(0)


def test_shard_of_hash_is_crc32_not_hash():
    spec = PartitionSpec("id", "hash", 4)
    for value in (0, 17, "x", None, 2.5):
        expected = zlib.crc32(key_bytes(value)) % 4
        assert shard_of(value, spec) == expected


def test_shard_of_range_bisects_bounds():
    spec = PartitionSpec("id", "range", 3, (10, 20))
    assert shard_of(5, spec) == 0
    assert shard_of(10, spec) == 1  # bound value goes right
    assert shard_of(15, spec) == 1
    assert shard_of(20, spec) == 2
    assert shard_of(999, spec) == 2
    assert shard_of(None, spec) == 0  # NULL sorts first


def test_shard_of_single_shard_is_always_zero():
    spec = PartitionSpec("id", "hash", 1)
    assert all(shard_of(v, spec) == 0 for v in (1, "a", None))


# ----------------------------------------------------------------------
# partition_file.
# ----------------------------------------------------------------------


def test_partition_file_is_a_byte_partition(tmp_path, schema, rows):
    path = tmp_path / "t.csv"
    write_csv(path, rows, schema)
    spec = PartitionSpec("id", "hash", 3)
    targets = partition_file(path, schema, spec, tmp_path / "out")

    original = path.read_text(encoding="utf-8").splitlines(keepends=True)
    header, data = original[0], original[1:]
    shard_lines = []
    for i, target in enumerate(targets):
        lines = target.read_text(encoding="utf-8").splitlines(
            keepends=True
        )
        assert lines[0] == header  # header replicated per shard
        for line in lines[1:]:
            assert line in data  # every shard line is an original byte
        shard_lines.extend(lines[1:])
    assert sorted(shard_lines) == sorted(data)  # union, no dup, no loss


def test_partition_file_routes_by_key(tmp_path, schema, rows):
    path = tmp_path / "t.csv"
    write_csv(path, rows, schema)
    spec = PartitionSpec("id", "hash", 4)
    targets = partition_file(path, schema, spec, tmp_path / "out")
    for i, target in enumerate(targets):
        lines = target.read_text(encoding="utf-8").splitlines()[1:]
        for line in lines:
            key = int(line.split(",")[0])
            assert shard_of(key, spec) == i


def test_partition_file_writes_empty_shards(tmp_path, schema):
    """Every worker must get a file, even with no rows for it."""
    path = tmp_path / "t.csv"
    write_csv(path, [(1, "a", 1.0)], schema)
    spec = PartitionSpec("id", "hash", 4)
    targets = partition_file(path, schema, spec, tmp_path / "out")
    assert len(targets) == 4
    assert all(t.exists() for t in targets)
    non_empty = [
        t
        for t in targets
        if len(t.read_text(encoding="utf-8").splitlines()) > 1
    ]
    assert len(non_empty) == 1


def test_partition_file_jsonl(tmp_path, schema, rows):
    path = tmp_path / "t.jsonl"
    write_jsonl(path, rows, schema)
    spec = PartitionSpec("id", "hash", 2)
    targets = partition_file(
        path, schema, spec, tmp_path / "out", fmt="jsonl"
    )
    original = path.read_text(encoding="utf-8").splitlines()
    merged = []
    for target in targets:
        assert target.suffix == ".jsonl"
        merged.extend(target.read_text(encoding="utf-8").splitlines())
    assert sorted(merged) == sorted(original)


def test_partition_file_rejects_quoted_csv(tmp_path, schema):
    path = tmp_path / "t.csv"
    path.write_text(
        'id,name,score\n1,"a,b",2.0\n', encoding="utf-8"
    )
    spec = PartitionSpec("id", "hash", 2)
    with pytest.raises(ShardingError, match="quoted"):
        partition_file(
            path,
            schema,
            spec,
            tmp_path / "out",
            dialect=CsvDialect(quote_char='"'),
        )


def test_partition_file_rejects_short_rows(tmp_path):
    schema = TableSchema(
        [Column("a", DataType.INTEGER), Column("b", DataType.INTEGER)]
    )
    path = tmp_path / "t.csv"
    path.write_text("a,b\n1\n", encoding="utf-8")
    spec = PartitionSpec("b", "hash", 2)
    with pytest.raises(ShardingError, match="fields"):
        partition_file(path, schema, spec, tmp_path / "out")


# ----------------------------------------------------------------------
# derive_range_bounds.
# ----------------------------------------------------------------------


def test_derive_range_bounds_quantiles(tmp_path, schema, rows):
    path = tmp_path / "t.csv"
    write_csv(path, rows, schema)
    bounds = derive_range_bounds(path, schema, "id", 4)
    assert len(bounds) == 3
    assert list(bounds) == sorted(bounds)
    spec = PartitionSpec("id", "range", 4, bounds)
    counts = [0] * 4
    for row in rows:
        counts[shard_of(row[0], spec)] += 1
    # equi-count quantiles: no shard more than twice the fair share
    assert max(counts) <= 2 * (len(rows) // 4)


def test_derive_range_bounds_rejects_skew(tmp_path, schema):
    path = tmp_path / "t.csv"
    write_csv(path, [(1, "a", 0.0)] * 50, schema)
    with pytest.raises(ShardingError, match="skew"):
        derive_range_bounds(path, schema, "id", 4)


def test_derive_range_bounds_rejects_all_null(tmp_path, schema):
    path = tmp_path / "t.csv"
    write_csv(path, [(None, "a", 0.0)] * 5, schema)
    with pytest.raises(ShardingError, match="no non-NULL"):
        derive_range_bounds(path, schema, "id", 2)


# ----------------------------------------------------------------------
# append_rows_partitioned.
# ----------------------------------------------------------------------


def test_append_rows_partitioned_routes_tails(tmp_path, schema, rows):
    path = tmp_path / "t.csv"
    write_csv(path, rows, schema)
    spec = PartitionSpec("id", "hash", 3)
    targets = partition_file(path, schema, spec, tmp_path / "out")
    before = [
        len(t.read_text(encoding="utf-8").splitlines()) for t in targets
    ]
    fresh = [(1000 + i, f"new{i}", float(i)) for i in range(30)]
    appended = append_rows_partitioned(fresh, schema, spec, targets)
    assert len(appended) == 3
    assert sum(1 for b in appended if b > 0) >= 2
    total_new = 0
    for i, target in enumerate(targets):
        lines = target.read_text(encoding="utf-8").splitlines()
        new = lines[before[i] :]
        total_new += len(new)
        for line in new:
            assert shard_of(int(line.split(",")[0]), spec) == i
    assert total_new == len(fresh)
