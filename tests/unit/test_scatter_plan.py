"""The scatter planner's routing decisions and merge algebra.

Pure planning tests (no servers, no engines): which statements route
to one shard, which fan out, what SQL the shards receive, and how the
client-side merge recombines synthetic shard answers.
"""

from __future__ import annotations

import pytest

from repro import DataType, PartitionSpec
from repro.errors import PlanningError, ShardingError
from repro.sharding import ScatterPlanner, ShardResult, gather
from repro.sharding.partition import shard_of

SPEC = PartitionSpec("id", "hash", 4)


@pytest.fixture
def planner():
    return ScatterPlanner({"t": SPEC}, 4)


# ----------------------------------------------------------------------
# Routing decisions.
# ----------------------------------------------------------------------


def test_single_shard_routes_everything_verbatim():
    planner = ScatterPlanner({"t": PartitionSpec("id", "hash", 1)}, 1)
    for sql in (
        "SELECT * FROM t",
        "SELECT COUNT(*) FROM t GROUP BY id",
        "this is not even sql",  # not parsed: forwarded verbatim
    ):
        plan = planner.plan(sql)
        assert plan.is_routed
        assert plan.target == 0
        assert plan.shard_sql == sql
        assert plan.route_reason == "single shard"


def test_point_equality_routes_to_owner(planner):
    plan = planner.plan("SELECT * FROM t WHERE id = 17 AND x > 2")
    assert plan.is_routed
    assert plan.target == shard_of(17, SPEC)
    assert "id" in plan.route_reason
    assert plan.shard_sql == "SELECT * FROM t WHERE id = 17 AND x > 2"


def test_reversed_equality_routes(planner):
    plan = planner.plan("SELECT * FROM t WHERE 17 = id")
    assert plan.is_routed
    assert plan.target == shard_of(17, SPEC)


def test_in_list_routes_only_when_one_shard_owns_all(planner):
    values = [17, 170, 1700, 17000, 53, 8]
    same = [v for v in values if shard_of(v, SPEC) == shard_of(17, SPEC)]
    if len(same) >= 2:
        sql = f"SELECT * FROM t WHERE id IN ({same[0]}, {same[1]})"
        assert planner.plan(sql).is_routed
    spread = sorted({shard_of(v, SPEC) for v in values})
    assert len(spread) > 1  # sanity: the probe values do spread
    sql = "SELECT * FROM t WHERE id IN (%s)" % ", ".join(
        str(v) for v in values
    )
    assert not planner.plan(sql).is_routed


def test_null_and_inequality_do_not_route(planner):
    assert not planner.plan("SELECT * FROM t WHERE id = NULL").is_routed
    assert not planner.plan("SELECT * FROM t WHERE id > 17").is_routed
    assert not planner.plan(
        "SELECT * FROM t WHERE id = 1 OR id = 9999"
    ).is_routed


def test_no_from_and_unknown_table_route_to_shard_zero(planner):
    plan = planner.plan("SELECT 1 + 1")
    assert plan.is_routed and plan.target == 0
    plan = planner.plan("SELECT * FROM other")
    assert plan.is_routed and plan.target == 0
    assert plan.route_reason == "unpartitioned table"


def test_joins_are_rejected(planner):
    with pytest.raises(ShardingError, match="join"):
        planner.plan("SELECT * FROM t JOIN t AS u ON t.id = u.id")


# ----------------------------------------------------------------------
# Scatter + re-aggregate plans.
# ----------------------------------------------------------------------


def test_aggregate_shard_sql_asks_for_partials(planner):
    plan = planner.plan(
        "SELECT g, COUNT(*) AS n, SUM(v) AS sv FROM t "
        "WHERE v > 0 GROUP BY g"
    )
    assert plan.mode == "scatter_agg"
    sql = plan.shard_sql.lower()
    assert "__d0" in sql  # the group key, named for the wire
    assert "count(*)" in sql and "sum(" in sql
    assert "where" in sql and "group by" in sql


def test_avg_decomposes_into_sum_and_count(planner):
    plan = planner.plan("SELECT AVG(v) AS a FROM t")
    sql = plan.shard_sql.lower()
    assert "avg(" not in sql  # AVG never crosses the wire
    assert "sum(" in sql and "count(" in sql


def test_distinct_aggregate_is_rejected(planner):
    with pytest.raises(ShardingError, match="DISTINCT"):
        planner.plan("SELECT COUNT(DISTINCT g) FROM t")


def test_star_with_group_by_is_rejected(planner):
    with pytest.raises(PlanningError, match=r"\*"):
        planner.plan("SELECT * FROM t GROUP BY g")


def test_ungrouped_column_is_rejected(planner):
    with pytest.raises(PlanningError, match="GROUP BY"):
        planner.plan("SELECT v, COUNT(*) FROM t GROUP BY g")


def test_count_partials_merge_by_summing(planner):
    plan = planner.plan("SELECT COUNT(*) AS n, SUM(v) AS s FROM t")
    results = [
        ShardResult(
            ["__c0", "__c1"],
            [DataType.INTEGER, DataType.INTEGER],
            [(count, total)],
        )
        for count, total in [(3, 30), (0, None), (5, 12), (2, -2)]
    ]
    merged = plan.merge(results)
    assert merged.columns == ["n", "s"]
    assert list(merged.rows()) == [(10, 40)]


def test_grouped_merge_re_aggregates_across_shards(planner):
    plan = planner.plan(
        "SELECT g, MIN(v) AS lo, MAX(v) AS hi FROM t GROUP BY g "
        "ORDER BY g"
    )
    types = [DataType.TEXT, DataType.INTEGER, DataType.INTEGER]
    results = [
        ShardResult(
            ["__d0", "__c0", "__c1"], types, [("a", 1, 5), ("b", 2, 2)]
        ),
        ShardResult(["__d0", "__c0", "__c1"], types, [("a", 0, 9)]),
    ]
    merged = plan.merge(results)
    assert merged.columns == ["g", "lo", "hi"]
    assert list(merged.rows()) == [("a", 0, 9), ("b", 2, 2)]


def test_merge_rejects_disagreeing_shards(planner):
    plan = planner.plan("SELECT COUNT(*) AS n FROM t")
    results = [
        ShardResult(["__c0"], [DataType.INTEGER], [(1,)]),
        ShardResult(["other"], [DataType.INTEGER], [(2,)]),
    ]
    with pytest.raises(ShardingError, match="disagree"):
        plan.merge(results)


# ----------------------------------------------------------------------
# Scatter + concat plans.
# ----------------------------------------------------------------------


def test_concat_adds_hidden_sort_column(planner):
    plan = planner.plan("SELECT a FROM t ORDER BY b LIMIT 5")
    assert plan.mode == "scatter_concat"
    assert plan.hidden == ["__sort0"]
    sql = plan.shard_sql.lower()
    assert "__sort0" in sql
    assert "limit 5" in sql  # pushed down with the ORDER BY


def test_concat_pushes_limit_plus_offset(planner):
    plan = planner.plan("SELECT a FROM t ORDER BY a LIMIT 5 OFFSET 3")
    assert "LIMIT 8" in plan.shard_sql


def test_concat_without_limit_drops_shard_order(planner):
    plan = planner.plan("SELECT a FROM t ORDER BY a")
    assert "order by" not in plan.shard_sql.lower()


def test_concat_merge_sorts_dedups_and_limits(planner):
    plan = planner.plan("SELECT DISTINCT a FROM t ORDER BY a LIMIT 3")
    results = [
        ShardResult(["a"], [DataType.INTEGER], [(5,), (1,), (3,)]),
        ShardResult(["a"], [DataType.INTEGER], [(2,), (1,), (9,)]),
    ]
    merged = plan.merge(results)
    assert list(merged.rows()) == [(1,), (2,), (3,)]


def test_concat_merge_drops_hidden_columns(planner):
    plan = planner.plan("SELECT a FROM t ORDER BY b DESC LIMIT 10")
    results = [
        ShardResult(
            ["a", "__sort0"],
            [DataType.INTEGER, DataType.INTEGER],
            [(1, 10), (2, 30)],
        ),
        ShardResult(
            ["a", "__sort0"],
            [DataType.INTEGER, DataType.INTEGER],
            [(3, 20)],
        ),
    ]
    merged = plan.merge(results)
    assert merged.columns == ["a"]
    assert list(merged.rows()) == [(2,), (3,), (1,)]


# ----------------------------------------------------------------------
# ORDER BY target resolution (mirrors the engine).
# ----------------------------------------------------------------------


def test_order_by_alias_resolves_to_aggregate(planner):
    plan = planner.plan(
        "SELECT g, SUM(v) AS sv FROM t GROUP BY g ORDER BY sv DESC"
    )
    assert plan.mode == "scatter_agg"


def test_order_by_ordinal_out_of_range(planner):
    with pytest.raises(PlanningError, match="out of range"):
        planner.plan("SELECT a FROM t ORDER BY 3")


# ----------------------------------------------------------------------
# Gather driver.
# ----------------------------------------------------------------------


def test_gather_routes_to_one_shard_only(planner):
    calls = []

    def run_shard(index, sql):
        calls.append(index)
        return ShardResult(["a"], [DataType.INTEGER], [(index,)])

    plan = planner.plan("SELECT a FROM t WHERE id = 17")
    merged = gather(plan, 4, run_shard)
    assert calls == [shard_of(17, SPEC)]
    assert list(merged.rows()) == [(calls[0],)]


def test_gather_fans_out_to_all_shards(planner):
    seen = []

    def run_shard(index, sql):
        seen.append(index)
        return ShardResult(["__c0"], [DataType.INTEGER], [(index,)])

    plan = planner.plan("SELECT COUNT(*) AS n FROM t")
    merged = gather(plan, 4, run_shard)
    assert sorted(seen) == [0, 1, 2, 3]
    assert list(merged.rows()) == [(0 + 1 + 2 + 3,)]
