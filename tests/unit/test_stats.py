"""Unit tests for on-the-fly statistics."""

import numpy as np
import pytest

from repro.batch import ColumnVector
from repro.core.stats import AttributeStatistics, StatisticsStore
from repro.datatypes import DataType


def _int_vec(values, nulls=None):
    values = np.asarray(values, dtype=np.int64)
    if nulls is None:
        nulls = np.zeros(len(values), dtype=np.bool_)
    return ColumnVector(DataType.INTEGER, values, np.asarray(nulls))


def _store(sample_size=256):
    return StatisticsStore(sample_size=sample_size, histogram_buckets=8)


class TestObservation:
    def test_min_max_null_fraction(self):
        store = _store()
        store.observe("x", _int_vec([5, 1, 9], [False, False, False]))
        store.observe("x", _int_vec([0, 7], [True, False]))
        stats = store.get("x")
        assert stats.min_value == 1
        assert stats.max_value == 9
        assert stats.rows_seen == 5
        assert stats.null_count == 1
        assert stats.null_fraction == pytest.approx(0.2)

    def test_text_min_max(self):
        store = _store()
        vec = ColumnVector.from_pylist(DataType.TEXT, ["pear", "apple", "fig"])
        store.observe("s", vec)
        stats = store.get("s")
        assert stats.min_value == "apple"
        assert stats.max_value == "pear"

    def test_row_estimate_monotone(self):
        store = _store()
        store.set_row_estimate(100)
        store.set_row_estimate(50)
        assert store.row_estimate == 100

    def test_empty_vector_noop(self):
        store = _store()
        store.observe("x", _int_vec([]))
        assert store.get("x").rows_seen == 0


class TestReservoir:
    def test_sample_bounded(self):
        store = _store(sample_size=64)
        for __ in range(10):
            store.observe("x", _int_vec(np.arange(1000)))
        assert len(store.get("x").sample) == 64

    def test_small_input_fully_sampled(self):
        store = _store(sample_size=64)
        store.observe("x", _int_vec([1, 2, 3]))
        assert sorted(store.get("x").sample) == [1, 2, 3]

    def test_sample_values_are_python_ints(self):
        store = _store()
        store.observe("x", _int_vec([1]))
        assert type(store.get("x").sample[0]) is int


class TestEstimates:
    def test_distinct_low_cardinality(self):
        store = _store(sample_size=512)
        store.observe("x", _int_vec([1, 2, 3] * 100))
        est = store.get("x").distinct_estimate()
        assert est == pytest.approx(3.0)

    def test_distinct_high_cardinality_scales(self):
        store = _store(sample_size=128)
        rng = np.random.default_rng(0)
        stats = None
        for __ in range(8):
            store.observe("x", _int_vec(rng.integers(0, 1 << 40, 1000)))
        stats = store.get("x")
        assert stats.distinct_estimate() > 1000

    def test_selectivity_eq_uniform(self):
        store = _store(sample_size=1024)
        store.observe("x", _int_vec(np.arange(1000) % 10))
        sel = store.get("x").selectivity_eq(3)
        assert 0.05 < sel < 0.2  # true value 0.1

    def test_selectivity_eq_absent_value(self):
        store = _store(sample_size=1024)
        store.observe("x", _int_vec(np.arange(100)))
        sel = store.get("x").selectivity_eq(10**9)
        assert 0 < sel <= 0.05

    def test_selectivity_eq_null(self):
        store = _store()
        store.observe("x", _int_vec([1, 2], [True, False]))
        assert store.get("x").selectivity_eq(None) == pytest.approx(0.5)

    def test_selectivity_range(self):
        store = _store(sample_size=2048)
        store.observe("x", _int_vec(np.arange(1000)))
        stats = store.get("x")
        sel = stats.selectivity_range(0, 499)
        assert 0.4 < sel < 0.6
        assert stats.selectivity_range(None, None) == pytest.approx(1.0)
        assert stats.selectivity_range(2000, None) == 0.0

    def test_selectivity_range_empty_sample(self):
        stats = AttributeStatistics(
            "x", DataType.INTEGER, sample_size=8, histogram_buckets=4
        )
        assert 0 < stats.selectivity_range(0, 10) < 1

    def test_selectivity_like_prefix(self):
        store = _store()
        vec = ColumnVector.from_pylist(
            DataType.TEXT, ["apple", "apricot", "banana", "avocado"]
        )
        store.observe("s", vec)
        sel = store.get("s").selectivity_like_prefix("ap")
        assert sel == pytest.approx(0.5)

    def test_histogram(self):
        store = _store()
        store.observe("x", _int_vec(np.arange(100)))
        hist = store.get("x").histogram()
        assert hist is not None
        assert len(hist) == 9  # buckets + 1 boundaries
        assert hist[0] <= hist[-1]

    def test_histogram_none_for_text(self):
        store = _store()
        store.observe(
            "s", ColumnVector.from_pylist(DataType.TEXT, ["a", "b"])
        )
        assert store.get("s").histogram() is None


class TestStoreManagement:
    def test_invalidate(self):
        store = _store()
        store.observe("x", _int_vec([1]))
        store.set_row_estimate(10)
        store.invalidate()
        assert store.get("x") is None
        assert store.row_estimate == 0

    def test_attribute_names_and_describe(self):
        store = _store()
        store.observe("b", _int_vec([1]))
        store.observe("a", _int_vec([2]))
        assert store.attribute_names() == ["a", "b"]
        described = store.describe()
        assert {d["name"] for d in described} == {"a", "b"}

    def test_has(self):
        store = _store()
        assert not store.has("x")
        store.observe("x", _int_vec([1]))
        assert store.has("x")
