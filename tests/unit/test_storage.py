"""Unit tests for heap / column-store tables and the bulk loader."""

import numpy as np
import pytest

from repro.batch import ColumnVector
from repro.catalog.schema import Column, TableSchema
from repro.core.metrics import QueryMetrics
from repro.datatypes import DataType
from repro.errors import StorageError
from repro.rawio.generator import (
    ColumnSpec,
    DatasetSpec,
    generate_csv,
)
from repro.storage.columnstore import ZONE_BLOCK_ROWS, ColumnStoreTable
from repro.storage.heap import RowHeapTable
from repro.storage.loader import load_csv_to_columns

SCHEMA = TableSchema(
    [
        Column("i", DataType.INTEGER),
        Column("f", DataType.FLOAT),
        Column("s", DataType.TEXT),
        Column("b", DataType.BOOLEAN),
        Column("d", DataType.DATE),
    ]
)


def _columns(n=100, seed=0):
    rng = np.random.default_rng(seed)
    return {
        "i": ColumnVector.from_pylist(
            DataType.INTEGER,
            [int(v) if v % 7 else None for v in rng.integers(0, 1000, n)],
        ),
        "f": ColumnVector.from_pylist(
            DataType.FLOAT, [float(v) for v in rng.uniform(0, 1, n)]
        ),
        "s": ColumnVector.from_pylist(
            DataType.TEXT,
            [
                None if v < 0.1 else f"str{int(v * 100)}"
                for v in rng.uniform(0, 1, n)
            ],
        ),
        "b": ColumnVector.from_pylist(
            DataType.BOOLEAN, [bool(v > 0.5) for v in rng.uniform(0, 1, n)]
        ),
        "d": ColumnVector.from_pylist(
            DataType.DATE, [int(v) for v in rng.integers(0, 20000, n)]
        ),
    }


def _scan_all(table, columns, batch_size=32):
    parts = [
        {name: batch.column(name).to_pylist() for name in columns}
        for batch in table.scan(columns, batch_size)
    ]
    return {
        name: [v for part in parts for v in part[name]] for name in columns
    }


@pytest.mark.parametrize("kind", ["heap", "column"])
class TestStoredTables:
    def _create(self, tmp_path, kind, columns):
        if kind == "heap":
            return RowHeapTable.create(tmp_path / "t.heap", SCHEMA, columns)
        return ColumnStoreTable.create(tmp_path / "t.cols", SCHEMA, columns)

    def test_roundtrip_all_types(self, tmp_path, kind):
        columns = _columns(100)
        table = self._create(tmp_path, kind, columns)
        assert table.num_rows == 100
        data = _scan_all(table, SCHEMA.names())
        for name in SCHEMA.names():
            assert data[name] == columns[name].to_pylist()

    def test_projection_scan(self, tmp_path, kind):
        columns = _columns(50)
        table = self._create(tmp_path, kind, columns)
        data = _scan_all(table, ["f", "i"])
        assert set(data) == {"f", "i"}

    def test_gather(self, tmp_path, kind):
        columns = _columns(50)
        table = self._create(tmp_path, kind, columns)
        ids = np.array([3, 17, 42], dtype=np.int64)
        batch = table.gather(["i", "s"], ids)
        expected = columns["i"].to_pylist()
        assert batch.column("i").to_pylist() == [
            expected[3],
            expected[17],
            expected[42],
        ]

    def test_io_metered(self, tmp_path, kind):
        columns = _columns(50)
        table = self._create(tmp_path, kind, columns)
        metrics = QueryMetrics()
        list(table.scan(["i"], 16, metrics))
        assert metrics.bytes_read > 0

    def test_missing_column_at_create(self, tmp_path, kind):
        columns = _columns(10)
        del columns["f"]
        with pytest.raises(StorageError):
            self._create(tmp_path, kind, columns)

    def test_ragged_columns_at_create(self, tmp_path, kind):
        columns = _columns(10)
        columns["f"] = ColumnVector.from_pylist(DataType.FLOAT, [1.0])
        with pytest.raises(StorageError):
            self._create(tmp_path, kind, columns)

    def test_storage_bytes_positive(self, tmp_path, kind):
        table = self._create(tmp_path, kind, _columns(10))
        assert table.storage_bytes() > 0


class TestZoneMaps:
    def test_zone_map_built_for_numeric(self, tmp_path):
        columns = _columns(ZONE_BLOCK_ROWS * 2 + 10)
        table = ColumnStoreTable.create(tmp_path / "t", SCHEMA, columns)
        zones = table.zone_map("i")
        assert zones is not None
        mins, maxs = zones
        assert len(mins) == 3
        assert (mins <= maxs).all()
        assert table.zone_map("s") is None

    def test_zone_map_disabled(self, tmp_path):
        table = ColumnStoreTable.create(
            tmp_path / "t", SCHEMA, _columns(10), build_zone_maps=False
        )
        assert table.zone_map("i") is None

    def test_block_filter_skips_blocks(self, tmp_path):
        n = ZONE_BLOCK_ROWS * 3
        columns = {
            "v": ColumnVector.from_pylist(
                DataType.INTEGER, list(range(n))
            )
        }
        schema = TableSchema([Column("v", DataType.INTEGER)])
        table = ColumnStoreTable.create(tmp_path / "t", schema, columns)
        # Only the middle block contains values in the window.
        keep = np.array([False, True, False])
        rows = 0
        for batch in table.scan(["v"], ZONE_BLOCK_ROWS, None, keep):
            rows += batch.num_rows
        assert rows == ZONE_BLOCK_ROWS

    def test_zone_mins_maxs_correct(self, tmp_path):
        n = ZONE_BLOCK_ROWS * 2
        values = list(range(n))
        columns = {
            "v": ColumnVector.from_pylist(DataType.INTEGER, values)
        }
        schema = TableSchema([Column("v", DataType.INTEGER)])
        table = ColumnStoreTable.create(tmp_path / "t", schema, columns)
        mins, maxs = table.zone_map("v")
        assert mins.tolist() == [0, ZONE_BLOCK_ROWS]
        assert maxs.tolist() == [ZONE_BLOCK_ROWS - 1, n - 1]


class TestLoader:
    def test_load_matches_generator(self, tmp_path):
        path = tmp_path / "t.csv"
        spec = DatasetSpec(
            columns=(
                ColumnSpec("a", DataType.INTEGER),
                ColumnSpec("t", DataType.TEXT, width=5),
                ColumnSpec("n", DataType.INTEGER, null_fraction=0.2),
            ),
            n_rows=500,
            seed=6,
        )
        schema = generate_csv(path, spec)
        columns, report = load_csv_to_columns(path, schema)
        assert report.rows == 500
        assert report.total_seconds > 0
        assert report.bytes_read == path.stat().st_size
        assert len(columns["a"]) == 500
        nulls = columns["n"].null_mask.sum()
        assert 50 < nulls < 150

    def test_report_phases_populated(self, tmp_path):
        path = tmp_path / "t.csv"
        schema = generate_csv(
            path,
            DatasetSpec(
                columns=(ColumnSpec("a", DataType.INTEGER),), n_rows=100
            ),
        )
        __, report = load_csv_to_columns(path, schema)
        assert report.io_seconds > 0
        assert report.tokenize_seconds > 0
        assert report.convert_seconds > 0
