"""Unit tests for dialects, generation, writing, reading, sniffing."""

import numpy as np
import pytest

from repro.catalog.schema import Column, TableSchema
from repro.core.metrics import QueryMetrics
from repro.datatypes import DataType, days_to_date
from repro.errors import RawDataError, SchemaError
from repro.rawio.dialect import CsvDialect
from repro.rawio.generator import (
    ColumnSpec,
    DatasetSpec,
    generate_csv,
    uniform_table_spec,
)
from repro.rawio.reader import RawFileReader
from repro.rawio.sniffer import infer_column_type, infer_schema
from repro.rawio.writer import append_csv_rows, render_rows, write_csv


class TestDialect:
    def test_defaults(self):
        dialect = CsvDialect()
        assert dialect.delimiter == ","
        assert not dialect.quoting
        assert dialect.has_header

    def test_invalid_delimiters(self):
        with pytest.raises(SchemaError):
            CsvDialect(delimiter=",,")
        with pytest.raises(SchemaError):
            CsvDialect(delimiter="\n")

    def test_invalid_quote(self):
        with pytest.raises(SchemaError):
            CsvDialect(quote_char=",,")
        with pytest.raises(SchemaError):
            CsvDialect(delimiter=";", quote_char=";")


class TestGenerator:
    def test_deterministic(self, tmp_path):
        spec = uniform_table_spec(n_attrs=3, n_rows=100, seed=5)
        p1, p2 = tmp_path / "a.csv", tmp_path / "b.csv"
        generate_csv(p1, spec)
        generate_csv(p2, spec)
        assert p1.read_bytes() == p2.read_bytes()

    def test_row_and_column_counts(self, tmp_path):
        path = tmp_path / "t.csv"
        schema = generate_csv(path, uniform_table_spec(4, 57, seed=1))
        lines = path.read_text().strip().split("\n")
        assert len(lines) == 58  # header + rows
        assert all(line.count(",") == 3 for line in lines)
        assert len(schema) == 4

    def test_header_matches_schema(self, tmp_path):
        path = tmp_path / "t.csv"
        schema = generate_csv(path, uniform_table_spec(3, 5))
        header = path.read_text().split("\n", 1)[0]
        assert header.split(",") == schema.names()

    def test_integer_width_padding(self, tmp_path):
        path = tmp_path / "t.csv"
        spec = DatasetSpec(
            columns=(ColumnSpec("a", DataType.INTEGER, width=10),),
            n_rows=20,
        )
        generate_csv(path, spec)
        for line in path.read_text().strip().split("\n")[1:]:
            assert len(line) == 10

    def test_text_width_exact(self, tmp_path):
        path = tmp_path / "t.csv"
        spec = DatasetSpec(
            columns=(ColumnSpec("s", DataType.TEXT, width=7),), n_rows=10
        )
        generate_csv(path, spec)
        for line in path.read_text().strip().split("\n")[1:]:
            assert len(line) == 7 and line.isalpha()

    def test_null_fraction(self, tmp_path):
        path = tmp_path / "t.csv"
        spec = DatasetSpec(
            columns=(
                ColumnSpec("a", DataType.INTEGER, null_fraction=0.5),
            ),
            n_rows=2000,
            seed=3,
        )
        generate_csv(path, spec)
        lines = path.read_text().strip().split("\n")[1:]
        empties = sum(1 for line in lines if line == "")
        assert 800 < empties < 1200

    def test_sequential_distribution_continues_across_chunks(self, tmp_path):
        path = tmp_path / "t.csv"
        spec = DatasetSpec(
            columns=(
                ColumnSpec(
                    "id", DataType.INTEGER, distribution="sequential", low=10
                ),
            ),
            n_rows=70000,  # crosses the 65536 chunk boundary
        )
        generate_csv(path, spec)
        lines = path.read_text().strip().split("\n")[1:]
        assert lines[0] == "10"
        assert lines[-1] == str(10 + 70000 - 1)

    def test_zipf_is_skewed(self, tmp_path):
        path = tmp_path / "t.csv"
        spec = DatasetSpec(
            columns=(
                ColumnSpec(
                    "z",
                    DataType.INTEGER,
                    distribution="zipf",
                    low=0,
                    high=1000,
                ),
            ),
            n_rows=5000,
            seed=4,
        )
        generate_csv(path, spec)
        values = [
            int(v) for v in path.read_text().strip().split("\n")[1:]
        ]
        counts = np.bincount(values, minlength=1000)
        assert counts[0] > 5 * max(counts[500:].max(), 1)

    def test_date_and_bool_and_cardinality_text(self, tmp_path):
        path = tmp_path / "t.csv"
        spec = DatasetSpec(
            columns=(
                ColumnSpec("d", DataType.DATE, low=0, high=100),
                ColumnSpec("b", DataType.BOOLEAN),
                ColumnSpec("s", DataType.TEXT, width=4, cardinality=3),
            ),
            n_rows=200,
            seed=9,
        )
        generate_csv(path, spec)
        lines = [
            line.split(",")
            for line in path.read_text().strip().split("\n")[1:]
        ]
        dates = {row[0] for row in lines}
        assert all(d.count("-") == 2 for d in dates)
        assert {row[1] for row in lines} <= {"true", "false"}
        assert len({row[2] for row in lines}) <= 3

    def test_invalid_specs(self):
        with pytest.raises(SchemaError):
            ColumnSpec("a", DataType.INTEGER, distribution="normal")
        with pytest.raises(SchemaError):
            ColumnSpec("a", DataType.INTEGER, null_fraction=1.5)
        with pytest.raises(SchemaError):
            ColumnSpec("a", DataType.INTEGER, low=5, high=5)
        with pytest.raises(SchemaError):
            DatasetSpec(columns=(), n_rows=10)
        with pytest.raises(SchemaError):
            uniform_table_spec(2, -1)


class TestWriter:
    def test_write_and_append(self, tmp_path):
        schema = TableSchema(
            [Column("a", DataType.INTEGER), Column("b", DataType.TEXT)]
        )
        path = tmp_path / "w.csv"
        write_csv(path, [(1, "x"), (2, "y")], schema)
        assert path.read_text() == "a,b\n1,x\n2,y\n"
        appended = append_csv_rows(path, [(3, "z")], schema)
        assert appended == len("3,z\n")
        assert path.read_text().endswith("3,z\n")

    def test_nulls_rendered_as_token(self, tmp_path):
        schema = TableSchema([Column("a", DataType.INTEGER)])
        text = render_rows([(None,), (7,)], schema)
        assert text == "\n7\n"

    def test_unquotable_delimiter_raises(self):
        schema = TableSchema([Column("s", DataType.TEXT)])
        with pytest.raises(RawDataError):
            render_rows([("has,comma",)], schema)

    def test_quoted_rendering(self):
        schema = TableSchema([Column("s", DataType.TEXT)])
        dialect = CsvDialect(quote_char='"')
        text = render_rows([('say "hi", ok',)], schema, dialect)
        assert text == '"say ""hi"", ok"\n'

    def test_row_width_mismatch(self):
        schema = TableSchema([Column("a", DataType.INTEGER)])
        with pytest.raises(RawDataError):
            render_rows([(1, 2)], schema)

    def test_empty_rows(self):
        schema = TableSchema([Column("a", DataType.INTEGER)])
        assert render_rows([], schema) == ""


class TestReader:
    def test_content_metered(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("x" * 1000)
        metrics = QueryMetrics()
        reader = RawFileReader(path, metrics)
        content = reader.content()
        assert len(content) == 1000
        assert metrics.bytes_read == 1000
        assert metrics.io_seconds > 0

    def test_content_read_once(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("abc")
        metrics = QueryMetrics()
        reader = RawFileReader(path, metrics)
        reader.content()
        reader.content()
        assert metrics.bytes_read == 3

    def test_missing_file(self, tmp_path):
        reader = RawFileReader(tmp_path / "nope.csv")
        with pytest.raises(RawDataError):
            reader.content()
        with pytest.raises(RawDataError):
            reader.size_bytes()

    def test_prefix_bytes(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_bytes(b"0123456789")
        assert RawFileReader(path).read_prefix_bytes(4) == b"0123"


class TestSniffer:
    def test_infer_column_type_ladder(self):
        assert infer_column_type(["1", "2"]) is DataType.INTEGER
        assert infer_column_type(["1.5", "2"]) is DataType.FLOAT
        assert infer_column_type(["2012-01-01"]) is DataType.DATE
        assert infer_column_type(["true", "no"]) is DataType.BOOLEAN
        assert infer_column_type(["abc"]) is DataType.TEXT
        assert infer_column_type([]) is DataType.TEXT

    def test_infer_schema_from_generated(self, tmp_path):
        path = tmp_path / "t.csv"
        spec = DatasetSpec(
            columns=(
                ColumnSpec("n", DataType.INTEGER),
                ColumnSpec("f", DataType.FLOAT),
                ColumnSpec("d", DataType.DATE, low=0, high=10),
                ColumnSpec("s", DataType.TEXT, width=5),
            ),
            n_rows=50,
        )
        generate_csv(path, spec)
        schema = infer_schema(path)
        assert schema.names() == ["n", "f", "d", "s"]
        assert schema.dtypes() == [
            DataType.INTEGER,
            DataType.FLOAT,
            DataType.DATE,
            DataType.TEXT,
        ]

    def test_infer_without_header(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("1,x\n2,y\n")
        schema = infer_schema(path, CsvDialect(has_header=False))
        assert schema.names() == ["a0", "a1"]

    def test_ragged_rows_raise(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(RawDataError):
            infer_schema(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("")
        with pytest.raises(RawDataError):
            infer_schema(path)

    def test_quoted_dialect_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a\n1\n")
        with pytest.raises(RawDataError):
            infer_schema(path, CsvDialect(quote_char='"'))


class TestRoundtrip:
    def test_generated_dates_parse_back(self, tmp_path):
        path = tmp_path / "t.csv"
        spec = DatasetSpec(
            columns=(ColumnSpec("d", DataType.DATE, low=10, high=20),),
            n_rows=30,
            seed=2,
        )
        generate_csv(path, spec)
        for line in path.read_text().strip().split("\n")[1:]:
            day = days_to_date(10)
            assert len(line) == len(day.isoformat())
