"""Unit tests for QueryResult formatting and the monitoring panels."""

import pytest

from repro import PostgresRaw, generate_csv, uniform_table_spec
from repro.core.metrics import QueryMetrics
from repro.datatypes import DataType
from repro.errors import ExecutionError
from repro.executor.result import QueryResult
from repro.monitor import (
    BreakdownReport,
    SystemMonitorPanel,
    render_attribute_usage,
    render_breakdown,
)
from repro.monitor.usage import attribute_usage_counts


class TestQueryResult:
    def _result(self):
        return QueryResult(
            ["a", "s", "d"],
            [DataType.INTEGER, DataType.TEXT, DataType.DATE],
            [(1, "x", 0), (None, None, 15000)],
        )

    def test_accessors(self):
        result = self._result()
        assert len(result) == 2
        assert result[0] == (1, "x", 0)
        assert result.first() == (1, "x", 0)
        assert result.column("s") == ["x", None]
        assert result.to_pydict()["a"] == [1, None]

    def test_scalar(self):
        r = QueryResult(["n"], [DataType.INTEGER], [(5,)])
        assert r.scalar() == 5
        with pytest.raises(ExecutionError):
            self._result().scalar()

    def test_empty_first_raises(self):
        r = QueryResult(["n"], [DataType.INTEGER], [])
        with pytest.raises(ExecutionError):
            r.first()

    def test_unknown_column_raises(self):
        with pytest.raises(ExecutionError):
            self._result().column("zz")

    def test_format_table(self):
        text = self._result().format_table()
        assert "NULL" in text
        assert "1970-01-01" in text  # date 0 rendered ISO
        assert "a" in text.split("\n")[0]

    def test_format_table_truncation(self):
        r = QueryResult(
            ["a"], [DataType.INTEGER], [(i,) for i in range(30)]
        )
        text = r.format_table(max_rows=5)
        assert "(25 more rows)" in text

    def test_repr(self):
        assert "2 rows" in repr(self._result())


class TestBreakdownReport:
    def test_add_and_totals(self):
        report = BreakdownReport()
        metrics = QueryMetrics(
            io_seconds=0.1, tokenizing_seconds=0.2, processing_seconds=0.3
        )
        report.add("SystemA", metrics)
        report.add_components("SystemB", {"processing": 0.05})
        totals = report.totals()
        assert totals["SystemA"] == pytest.approx(0.6)
        assert totals["SystemB"] == pytest.approx(0.05)

    def test_as_table_columns(self):
        report = BreakdownReport()
        report.add("X", QueryMetrics(io_seconds=0.5))
        record = report.as_table()[0]
        assert record["system"] == "X"
        assert record["io"] == 0.5
        assert "total" in record

    def test_render(self):
        report = BreakdownReport()
        report.add("X", QueryMetrics(io_seconds=0.5, tokenizing_seconds=0.5))
        text = render_breakdown(report, width=20)
        assert "X" in text
        assert "=" in text and "*" in text  # io + tokenizing glyphs
        assert "tokenizing" in text  # legend

    def test_render_empty(self):
        assert render_breakdown(BreakdownReport()) == "(no data)"


@pytest.fixture
def monitored_engine(tmp_path):
    path = tmp_path / "t.csv"
    schema = generate_csv(path, uniform_table_spec(5, 500, seed=2))
    eng = PostgresRaw()
    eng.register_csv("t", path, schema)
    return eng


class TestSystemMonitorPanel:
    def test_snapshot_series(self, monitored_engine):
        panel = SystemMonitorPanel(monitored_engine.table_state("t"))
        monitored_engine.query("SELECT a0 FROM t")
        panel.snapshot()
        monitored_engine.query("SELECT a1 FROM t")
        panel.snapshot()
        series = panel.cache_utilization_series()
        assert len(series) == 2
        assert series[1][1] >= series[0][1]  # cache grows

    def test_coverage_grid_marks(self, monitored_engine):
        monitored_engine.query("SELECT a1 FROM t")
        panel = SystemMonitorPanel(monitored_engine.table_state("t"))
        grid = panel.coverage_grid(region_count=4)
        joined = "\n".join(grid)
        assert "B" in joined  # a1: map + cache
        assert "m" in joined  # a0: map only (tokenized along the way)
        assert "." in joined  # untouched attributes

    def test_render_contains_sections(self, monitored_engine):
        monitored_engine.query("SELECT a0 FROM t WHERE a1 > 0")
        panel = SystemMonitorPanel(monitored_engine.table_state("t"))
        panel.snapshot()
        text = panel.render()
        assert "cache utilization" in text
        assert "positional map" in text
        assert "file coverage" in text
        assert "attribute usage" in text

    def test_usage_rendering(self, monitored_engine):
        monitored_engine.query("SELECT a0 FROM t")
        monitored_engine.query("SELECT a0, a2 FROM t")
        state = monitored_engine.table_state("t")
        counts = attribute_usage_counts(state)
        assert counts["a0"] == 2 and counts["a2"] == 1
        text = render_attribute_usage(state)
        assert "a0" in text and "#" in text

    def test_usage_empty(self, monitored_engine):
        state = monitored_engine.table_state("t")
        assert render_attribute_usage(state) == "(no attributes accessed yet)"
