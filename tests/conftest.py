"""Shared fixtures: generated raw files and pre-registered engines."""

from __future__ import annotations

import pytest

from repro import (
    Column,
    DataType,
    PostgresRaw,
    TableSchema,
    generate_csv,
    uniform_table_spec,
    write_csv,
)
from repro.rawio.generator import ColumnSpec, DatasetSpec


@pytest.fixture(scope="session")
def small_csv(tmp_path_factory):
    """5 000 x 6 uniform integer table (session-wide, read-only)."""
    path = tmp_path_factory.mktemp("data") / "small.csv"
    spec = uniform_table_spec(n_attrs=6, n_rows=5_000, seed=11)
    schema = generate_csv(path, spec)
    return path, schema


@pytest.fixture(scope="session")
def mixed_csv(tmp_path_factory):
    """Mixed-type table: ints, floats, text, dates, bools, with NULLs."""
    path = tmp_path_factory.mktemp("data") / "mixed.csv"
    spec = DatasetSpec(
        columns=(
            ColumnSpec("id", DataType.INTEGER, distribution="sequential"),
            ColumnSpec("price", DataType.FLOAT, low=0, high=1000),
            ColumnSpec("label", DataType.TEXT, width=6, cardinality=50),
            ColumnSpec(
                "day", DataType.DATE, low=15_000, high=16_000
            ),
            ColumnSpec("flag", DataType.BOOLEAN),
            ColumnSpec(
                "qty",
                DataType.INTEGER,
                low=0,
                high=100,
                null_fraction=0.1,
            ),
        ),
        n_rows=3_000,
        seed=23,
    )
    schema = generate_csv(path, spec)
    return path, schema


@pytest.fixture
def engine(small_csv):
    path, schema = small_csv
    eng = PostgresRaw()
    eng.register_csv("t", path, schema)
    return eng


@pytest.fixture
def mixed_engine(mixed_csv):
    path, schema = mixed_csv
    eng = PostgresRaw()
    eng.register_csv("m", path, schema)
    return eng


@pytest.fixture
def tiny_table(tmp_path):
    """A hand-written table with known contents for exact assertions."""
    schema = TableSchema(
        [
            Column("a", DataType.INTEGER),
            Column("b", DataType.TEXT),
            Column("c", DataType.FLOAT),
        ]
    )
    rows = [
        (1, "alpha", 1.5),
        (2, "beta", -2.25),
        (3, None, 0.0),
        (None, "delta", 4.75),
        (5, "eps", None),
    ]
    path = tmp_path / "tiny.csv"
    write_csv(path, rows, schema)
    return path, schema, rows


@pytest.fixture
def tiny_engine(tiny_table):
    path, schema, rows = tiny_table
    eng = PostgresRaw()
    eng.register_csv("tiny", path, schema)
    return eng, rows
