"""E13 — adaptive materialized aggregate cache (repro.mv).

The NoDB economics one level up: positional maps amortize *tokenizing*,
cached columns amortize *parsing+conversion* — but a repeated aggregate
still pays the scan and hash-aggregation every run.  This benchmark
prices the third tier.  One engine runs with ``mv_enabled=False`` and
fully warm positional maps + cache (today's best case); a second runs
with auto-materialization on.  Arms:

* **cold** — first-ever aggregate over the raw file (builds the maps);
* **warm-maps** — repeat aggregate, maps+cache hot, no MV (baseline);
* **mv-hit** — the same aggregate served from its exact MV (no scan);
* **mv-partial** — a narrower global aggregate re-aggregated from the
  wider resident MV.

Asserts MV answers are row-identical to the raw engine's, the governed
accounting balances, and (at full scale) an MV hit clears >= 5x the
warm-maps qps — the acceptance gate for this subsystem.
"""

from __future__ import annotations

from repro import PostgresRaw, PostgresRawConfig
from repro.catalog.schema import TableSchema
from repro.core.metrics import Stopwatch
from repro.rawio.writer import write_csv

from .conftest import SCALE, emit_bench_artifact, print_records, scaled_rows

SCHEMA = TableSchema.from_pairs(
    [("region", "text"), ("amount", "integer"), ("qty", "integer")]
)

WIDE = (
    "SELECT region, SUM(amount) AS s, COUNT(*) AS n, AVG(amount) AS m "
    "FROM t GROUP BY region"
)
PARTIAL = "SELECT SUM(amount) AS s, COUNT(*) AS n FROM t"

#: Timed repetitions per arm (the cold arm always runs once).
REPEATS = 25


def _qps(engine, sql: str, repeats: int = REPEATS) -> float:
    watch = Stopwatch()
    for __ in range(repeats):
        engine.query(sql)
    wall = watch.elapsed()
    return repeats / wall if wall else float("inf")


def test_mv_cache(benchmark, tmp_path_factory):
    tmp = tmp_path_factory.mktemp("mv_cache")
    n_rows = scaled_rows(40_000)
    path = tmp / "t.csv"
    write_csv(
        path,
        [(f"r{i % 8}", i * 7 % 10_000, i % 13) for i in range(n_rows)],
        SCHEMA,
    )
    raw_config = PostgresRawConfig(
        mv_enabled=False, memory_budget=256 * 1024 * 1024
    )
    mv_config = PostgresRawConfig(
        mv_auto=True,
        mv_min_repeats=2,
        memory_budget=256 * 1024 * 1024,
    )

    def sweep():
        records = []
        # Baseline engine: no MV subsystem, everything else warm.
        with PostgresRaw(raw_config) as engine:
            engine.register_csv("t", path, SCHEMA)
            cold_watch = Stopwatch()
            expect_wide = sorted(engine.query(WIDE).rows)
            cold_s = cold_watch.elapsed()
            expect_partial = sorted(engine.query(PARTIAL).rows)
            qps_warm_wide = _qps(engine, WIDE)
            qps_warm_partial = _qps(engine, PARTIAL)
        records.append(
            {"arm": "cold", "qps": 1.0 / cold_s if cold_s else 0.0}
        )
        records.append({"arm": "warm-maps", "qps": qps_warm_wide})

        # MV engine: the second WIDE plan crosses mv_min_repeats and
        # captures; everything after is served without a scan.
        with PostgresRaw(mv_config) as engine:
            engine.register_csv("t", path, SCHEMA)
            engine.query(WIDE)
            engine.query(WIDE)
            assert "MVScan [exact]" in engine.explain(WIDE)
            assert sorted(engine.query(WIDE).rows) == expect_wide
            assert "MVScan [partial" in engine.explain(PARTIAL)
            assert sorted(engine.query(PARTIAL).rows) == expect_partial
            qps_mv_hit = _qps(engine, WIDE)
            qps_mv_partial = _qps(engine, PARTIAL)
            governor = engine.service.governor
            assert governor.used_bytes == sum(
                r["nbytes"] for r in governor.residency()
            )
            mv_stats = engine.service.mv.stats()
            assert mv_stats["mvs"] == 1 and mv_stats["builds"] == 1
        records.append({"arm": "mv-hit", "qps": qps_mv_hit})
        records.append({"arm": "mv-partial", "qps": qps_mv_partial})
        return records

    records = benchmark.pedantic(sweep, rounds=1, iterations=1)
    by_arm = {r["arm"]: r["qps"] for r in records}
    speedup_hit = by_arm["mv-hit"] / by_arm["warm-maps"]
    speedup_partial = by_arm["mv-partial"] / by_arm["warm-maps"]
    print_records(
        f"E13: aggregate cache, {n_rows} rows, {REPEATS} repeats/arm "
        f"(mv-hit speedup over warm maps: {speedup_hit:.1f}x)",
        records,
    )
    benchmark.extra_info["mv_cache"] = records
    emit_bench_artifact(
        "mv_cache",
        {
            "cold_qps": by_arm["cold"],
            "qps_warm_maps": by_arm["warm-maps"],
            "qps_mv_hit": by_arm["mv-hit"],
            "qps_mv_partial": by_arm["mv-partial"],
            "speedup_mv_hit": speedup_hit,
            "speedup_mv_partial": speedup_partial,
        },
    )

    # Serving a resident aggregate must never lose to re-running it.
    assert by_arm["mv-hit"] > by_arm["warm-maps"]
    if SCALE >= 1.0:
        # The acceptance gate: >= 5x over fully warm positional maps.
        assert speedup_hit >= 5.0
        assert speedup_partial >= 2.0
