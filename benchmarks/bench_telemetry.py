"""E15 — telemetry overhead (repro.telemetry).

Observability that taxes the hot path gets turned off in production,
so the subsystem's admission ticket is this benchmark: the 4-client
concurrent hot-query leg (the same shape as E12) runs against two
services identical in everything but ``telemetry_enabled``, three
interleaved rounds each, and the best-of qps with tracing + metrics on
must stay within 5% of the best-of qps with them off.

Also exports the instrumented run's trace ring and slow-query log as
JSONL into the artifact directory, so every CI stress run uploads a
browsable sample of real span trees alongside the numbers.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path

from repro import PostgresRawConfig, PostgresRawService

from .conftest import emit_bench_artifact, print_records, scaled_rows

CORES = os.cpu_count() or 1
N_CLIENTS = 4
ROUNDS = 3

#: The hot batch: every query coverable by the warmed structures.
HOT_QUERIES = [
    "SELECT SUM(a2) AS s FROM t WHERE a1 < 600000",
    "SELECT a0, a3 FROM t WHERE a2 < 150000",
    "SELECT AVG(a4) AS m FROM t WHERE a0 < 800000",
    "SELECT COUNT(*) AS n FROM t WHERE a3 < 400000",
]

BATCHES_PER_CLIENT = 6

#: The hard gate: telemetry-on qps must lose less than this to
#: telemetry-off qps (best-of-ROUNDS on both sides).
MAX_OVERHEAD_PCT = 5.0


def _run_clients(service, n_threads: int) -> tuple[float, int]:
    """Total wall seconds and query count for ``n_threads`` clients."""
    from repro.core.metrics import Stopwatch

    start = threading.Barrier(n_threads + 1, timeout=60)
    errors: list = []

    def client():
        session = service.session()
        try:
            start.wait()
            for _ in range(BATCHES_PER_CLIENT):
                for sql in HOT_QUERIES:
                    session.query(sql)
        except Exception as exc:
            errors.append(repr(exc))

    threads = [threading.Thread(target=client) for _ in range(n_threads)]
    for t in threads:
        t.start()
    start.wait()
    watch = Stopwatch()
    for t in threads:
        t.join(timeout=300)
    wall = watch.elapsed()
    assert errors == []
    return wall, n_threads * BATCHES_PER_CLIENT * len(HOT_QUERIES)


def test_telemetry_overhead(benchmark, tmp_path_factory):
    from repro import generate_csv, uniform_table_spec

    tmp = tmp_path_factory.mktemp("telemetry")
    n_rows = scaled_rows(30_000)
    path = tmp / "t.csv"
    schema = generate_csv(
        path, uniform_table_spec(n_attrs=6, n_rows=n_rows, width=8, seed=31)
    )

    def config(enabled: bool) -> PostgresRawConfig:
        return PostgresRawConfig(
            memory_budget=256 * 1024 * 1024,
            max_concurrent_queries=8,
            admission_queue_depth=64,
            telemetry_enabled=enabled,
        )

    def sweep():
        with PostgresRawService(config(True)) as service_on, \
                PostgresRawService(config(False)) as service_off:
            for service in (service_on, service_off):
                service.register_csv("t", path, schema)
                warm = service.session()
                for sql in HOT_QUERIES:
                    warm.query(sql)
            rounds = []
            best = {"on": 0.0, "off": 0.0}
            # Interleaved rounds: both variants see the same machine
            # noise; best-of compares their clean runs.
            for i in range(ROUNDS):
                for label, service in (
                    ("on", service_on), ("off", service_off)
                ):
                    wall, n_queries = _run_clients(service, N_CLIENTS)
                    qps = n_queries / wall if wall else float("inf")
                    best[label] = max(best[label], qps)
                    rounds.append(
                        {"round": i, "telemetry": label, "qps": qps}
                    )
            # The instrumented service really did instrument: every
            # query traced and histogrammed.
            snap = service_on.telemetry.snapshot()
            # One warm pass + every client batch of every round.
            total = len(HOT_QUERIES) * (
                1 + N_CLIENTS * ROUNDS * BATCHES_PER_CLIENT
            )
            assert snap["counters"]["queries_total"] == total
            assert (
                snap["histograms"]["query_latency_seconds"]["count"] == total
            )
            assert snap["collectors"]["traces"]["started"] == total
            # And the disabled one really was free of instruments.
            snap_off = service_off.telemetry.snapshot()
            assert snap_off["counters"] == {}
            # Export a browsable sample of the instrumented run: the
            # trace ring and (after lowering the threshold) a few
            # slow-query entries, for the CI artifact upload.
            out_dir = Path(
                os.environ.get("REPRO_BENCH_ARTIFACT_DIR", "bench_artifacts")
            )
            out_dir.mkdir(parents=True, exist_ok=True)
            service_on.telemetry.slow_query_s = 1e-9
            session = service_on.session()
            for sql in HOT_QUERIES:
                session.query(sql)
            n_traces = service_on.telemetry.export_traces_jsonl(
                out_dir / "telemetry_traces.jsonl"
            )
            n_slow = service_on.telemetry.export_slow_queries_jsonl(
                out_dir / "telemetry_slow_queries.jsonl"
            )
            assert n_traces >= 1 and n_slow >= len(HOT_QUERIES)
        return {"rounds": rounds, "best": best}

    report = benchmark.pedantic(sweep, rounds=1, iterations=1)
    qps_on, qps_off = report["best"]["on"], report["best"]["off"]
    overhead_pct = (
        (qps_off - qps_on) / qps_off * 100.0 if qps_off else 0.0
    )
    print_records(
        f"E15: telemetry overhead, {N_CLIENTS} clients x {ROUNDS} rounds, "
        f"{n_rows} rows, {CORES} cores",
        report["rounds"]
        + [
            {"round": "best", "telemetry": "on", "qps": qps_on},
            {"round": "best", "telemetry": "off", "qps": qps_off},
            {
                "round": "overhead",
                "telemetry": f"{overhead_pct:.2f}%",
                "qps": 0.0,
            },
        ],
    )
    benchmark.extra_info["telemetry_overhead"] = report
    emit_bench_artifact(
        "telemetry_overhead",
        {
            "clients": N_CLIENTS,
            "rounds": ROUNDS,
            "rows": n_rows,
            "qps_telemetry_on": qps_on,
            "qps_telemetry_off": qps_off,
            "overhead_pct": overhead_pct,
        },
    )
    # The acceptance gate: spans + histograms cost < MAX_OVERHEAD_PCT
    # of 4-client throughput.
    assert overhead_pct < MAX_OVERHEAD_PCT
