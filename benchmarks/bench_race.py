"""E5 / Part III — the friendly race.

"After the 'starting shot', all contestants try to get the query
results as soon as possible."  PostgresRaw (no init) vs PostgreSQL
(load + ANALYZE), MySQL (cheap load), DBMS X (load + zone maps +
statistics — 'tuned'), and the external-files mode.

Paper shape: PostgresRaw's data-to-query time is the shortest of any
system that adapts; external files matches it on the first query but
never improves; conventional systems answer nothing until loading ends,
then run individual queries fast.
"""


from repro.baselines import DBMS_X, MYSQL, POSTGRESQL
from repro.workload import (
    ConventionalContestant,
    ExternalFilesContestant,
    FriendlyRace,
    PostgresRawContestant,
    RandomSelectProjectWorkload,
)

from .conftest import print_records

N_QUERIES = 8


def test_friendly_race(benchmark, bench_csv, tmp_path_factory):
    path, schema = bench_csv
    queries = RandomSelectProjectWorkload(
        "t", schema, projection_width=2, seed=99
    ).queries(N_QUERIES)
    race = FriendlyRace("t", path, schema)
    store = tmp_path_factory.mktemp("race")

    def run_race():
        return race.run(
            [
                PostgresRawContestant(),
                ConventionalContestant(
                    POSTGRESQL, storage_dir=store / "pg"
                ),
                ConventionalContestant(MYSQL, storage_dir=store / "my"),
                ConventionalContestant(DBMS_X, storage_dir=store / "dx"),
                ExternalFilesContestant(),
            ],
            queries,
        )

    report = benchmark.pedantic(run_race, rounds=1, iterations=1)
    records = report.as_table()
    print_records("Part III: Friendly Race", records)
    print()
    print(report.render())
    benchmark.extra_info["race"] = records

    lanes = {lane.name: lane for lane in report.lanes}
    raw = lanes["PostgresRaw"]
    # Zero-initialization headline.
    assert raw.init_seconds < 0.05
    for name in ("PostgreSQL", "MySQL", "DBMS X"):
        conventional = lanes[name]
        assert conventional.init_seconds > raw.init_seconds
        assert raw.data_to_query_seconds < conventional.data_to_query_seconds
        # PostgresRaw answers >= 1 query before their load finishes.
        assert raw.answered_by(conventional.init_seconds) >= 1
    # The tuned column store paid the most initialization.
    assert lanes["DBMS X"].init_seconds >= lanes["MySQL"].init_seconds
    # External files: same start as PostgresRaw, but total only grows.
    external = lanes["External files"]
    assert external.total_seconds > raw.total_seconds


def test_race_queries_answered_timeline(
    benchmark, bench_csv, tmp_path_factory
):
    """The audience view: queries answered as wall-clock advances."""
    path, schema = bench_csv
    queries = RandomSelectProjectWorkload("t", schema, seed=31).queries(6)
    race = FriendlyRace("t", path, schema)
    store = tmp_path_factory.mktemp("race_tl")

    def run_race():
        return race.run(
            [
                PostgresRawContestant(),
                ConventionalContestant(POSTGRESQL, storage_dir=store / "pg"),
            ],
            queries,
        )

    report = benchmark.pedantic(run_race, rounds=1, iterations=1)
    lanes = {lane.name: lane for lane in report.lanes}
    horizon = max(lane.total_seconds for lane in report.lanes)
    steps = [horizon * i / 8 for i in range(1, 9)]
    records = [
        {
            "t_seconds": t,
            "PostgresRaw": lanes["PostgresRaw"].answered_by(t),
            "PostgreSQL": lanes["PostgreSQL"].answered_by(t),
        }
        for t in steps
    ]
    print_records("Queries answered by time T", records)
    benchmark.extra_info["timeline"] = records
    # Early in the race PostgresRaw leads.
    early = records[1]
    assert early["PostgresRaw"] >= early["PostgreSQL"]
