"""E2 / Figure 3 — The Query Execution Breakdown panel.

Regenerates the demo's stacked-bar chart: execution time of the same
Select-Project query split into Processing / I/O / Convert / Parsing /
Tokenizing / NoDB for

* PostgreSQL        (conventional row store, data already loaded),
* Baseline          (external files: no positional map, no cache),
* PostgresRaw cold  (first query ever on the file),
* PostgresRaw PM+C  (warmed positional map + cache).

Paper shape: the Baseline bar is dominated by tokenizing+parsing+convert;
PostgresRaw (PM+C) collapses those components; PostgreSQL's own query is
cheap because the expensive part (loading) happened before the chart.
"""

import pytest

from repro import PostgresRaw, PostgresRawConfig
from repro.baselines import ConventionalDBMS, POSTGRESQL
from repro.monitor import BreakdownReport, render_breakdown

from .conftest import print_records

QUERY = "SELECT a0, a7 FROM t WHERE a3 < 200000"


@pytest.fixture(scope="module")
def contenders(bench_csv, tmp_path_factory):
    path, schema = bench_csv
    pg = ConventionalDBMS(
        POSTGRESQL, storage_dir=tmp_path_factory.mktemp("fig3_pg")
    )
    pg.load_csv("t", path, schema)

    baseline = PostgresRaw(PostgresRawConfig.baseline())
    baseline.register_csv("t", path, schema)

    warm = PostgresRaw()
    warm.register_csv("t", path, schema)
    warm.query(QUERY)  # warm the map and cache

    return path, schema, pg, baseline, warm


def test_fig3_execution_breakdown(benchmark, contenders):
    path, schema, pg, baseline, warm = contenders

    def run_panel():
        report = BreakdownReport()
        cold_engine = PostgresRaw()
        cold_engine.register_csv("t", path, schema)
        report.add("PostgreSQL (loaded)", pg.query(QUERY).metrics)
        report.add("Baseline (ext files)", baseline.query(QUERY).metrics)
        report.add("PostgresRaw cold", cold_engine.query(QUERY).metrics)
        report.add("PostgresRaw PM+C", warm.query(QUERY).metrics)
        return report

    report = benchmark.pedantic(run_panel, rounds=3, iterations=1)
    records = report.as_table()
    print_records("Figure 3: Query Execution Breakdown (seconds)", records)
    print(render_breakdown(report))
    benchmark.extra_info["figure3"] = records

    by_system = {r["system"]: r for r in records}
    cold = by_system["PostgresRaw cold"]
    warm_row = by_system["PostgresRaw PM+C"]
    base = by_system["Baseline (ext files)"]
    # Shape assertions from the paper.
    assert cold["tokenizing"] > 0
    assert warm_row["tokenizing"] == 0.0
    assert warm_row["total"] < base["total"]
    assert by_system["PostgreSQL (loaded)"]["tokenizing"] == 0.0


def test_fig3_baseline_never_improves(benchmark, contenders):
    """The Baseline re-pays the full cost on every repetition."""
    __, __, __, baseline, __ = contenders
    result = benchmark(lambda: baseline.query(QUERY).metrics)
    assert result.fields_tokenized > 0
    assert result.bytes_read > 0


def test_fig3_warm_postgresraw_query(benchmark, contenders):
    """The warmed PM+C query — the figure's smallest in-situ bar."""
    __, __, __, __, warm = contenders
    result = benchmark(lambda: warm.query(QUERY).metrics)
    assert result.fields_tokenized == 0


def test_fig3_loaded_postgresql_query(benchmark, contenders):
    """The conventional bar (post-load query)."""
    __, __, pg, __, __ = contenders
    result = benchmark(lambda: pg.query(QUERY).metrics)
    assert result.tokenizing_seconds == 0
