"""E9 — response time over a sequence of queries (the NoDB headline).

"As more queries are processed, response times improve due to the
adaptive properties of PostgresRaw."

A random Select-Project sequence replayed against PostgresRaw and the
external-files baseline.  Paper shape: PostgresRaw's per-query latency
decays toward a steady state an order of magnitude under its first
query; the baseline's stays flat at first-query cost.
"""


from repro import PostgresRaw, PostgresRawConfig
from repro.workload import RandomSelectProjectWorkload

from .conftest import print_records

N_QUERIES = 12


def test_query_sequence_adaptation(benchmark, bench_csv):
    path, schema = bench_csv
    specs = RandomSelectProjectWorkload(
        "t", schema, projection_width=2, seed=17
    ).queries(N_QUERIES)

    def replay():
        adaptive = PostgresRaw()
        adaptive.register_csv("t", path, schema)
        baseline = PostgresRaw(PostgresRawConfig.baseline())
        baseline.register_csv("t", path, schema)
        series = []
        for i, spec in enumerate(specs):
            sql = spec.to_sql()
            a = adaptive.query(sql).metrics.total_seconds
            b = baseline.query(sql).metrics.total_seconds
            series.append(
                {"query": i, "postgresraw_s": a, "baseline_s": b}
            )
        return series

    series = benchmark.pedantic(replay, rounds=1, iterations=1)
    print_records("E9: response time over the query sequence", series)
    benchmark.extra_info["sequence"] = series

    raw_times = [r["postgresraw_s"] for r in series]
    base_times = [r["baseline_s"] for r in series]
    steady = sum(raw_times[-4:]) / 4
    # Adaptation: steady state well below the first query.
    assert steady < raw_times[0] / 2
    # The baseline never escapes first-query cost.
    base_steady = sum(base_times[-4:]) / 4
    assert base_steady > steady * 2
    # Cumulative view: PostgresRaw's total beats the baseline's.
    assert sum(raw_times) < sum(base_times)


def test_steady_state_latency(benchmark, bench_csv):
    """Timed: a single warm query at steady state."""
    path, schema = bench_csv
    engine = PostgresRaw()
    engine.register_csv("t", path, schema)
    sql = "SELECT a1, a8 FROM t WHERE a4 BETWEEN 200000 AND 400000"
    engine.query(sql)
    engine.query(sql)
    benchmark(lambda: engine.query(sql))


def test_first_query_latency(benchmark, bench_csv):
    """Timed: the cold first-touch query (fresh engine per round)."""
    path, schema = bench_csv
    sql = "SELECT a1, a8 FROM t WHERE a4 BETWEEN 200000 AND 400000"

    def cold_query():
        engine = PostgresRaw()
        engine.register_csv("t", path, schema)
        return engine.query(sql)

    benchmark.pedantic(cold_query, rounds=3, iterations=1)
