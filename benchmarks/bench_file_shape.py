"""E8 — input-shape sweeps (the demo's data-generation knobs).

"tuples with fewer attributes or smaller attributes limit the
effectiveness of the positional map"

Two sweeps over generated files: attribute *count* (fixed total bytes)
and attribute *width*.  Paper shape: the positional map's advantage over
the baseline grows with both — more attributes to skip, and wider fields
make each skipped byte count.
"""


from repro import (
    PostgresRaw,
    PostgresRawConfig,
    generate_csv,
    uniform_table_spec,
)

from .conftest import print_records, scaled_rows

ATTR_COUNTS = [4, 8, 16, 32]
WIDTHS = [4, 8, 16]


def _warm_vs_baseline(path, schema, last_attr):
    query = f"SELECT a{last_attr} FROM t"
    adaptive = PostgresRaw(PostgresRawConfig(enable_cache=False))
    adaptive.register_csv("t", path, schema)
    adaptive.query(query)
    warm = adaptive.query(query).metrics.total_seconds

    baseline = PostgresRaw(PostgresRawConfig.baseline())
    baseline.register_csv("t", path, schema)
    base = baseline.query(query).metrics.total_seconds
    return warm, base


def test_attribute_count_sweep(benchmark, tmp_path_factory):
    tmp = tmp_path_factory.mktemp("shape_attrs")
    n_rows = scaled_rows(8_000)

    def sweep():
        records = []
        for n_attrs in ATTR_COUNTS:
            path = tmp / f"t{n_attrs}.csv"
            schema = generate_csv(
                path,
                uniform_table_spec(n_attrs, n_rows, width=8, seed=1),
            )
            warm, base = _warm_vs_baseline(path, schema, n_attrs - 1)
            records.append(
                {
                    "attrs": n_attrs,
                    "baseline_s": base,
                    "pm_warm_s": warm,
                    "speedup": base / warm if warm else float("inf"),
                }
            )
        return records

    records = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_records("E8a: attribute-count sweep (last attr projected)", records)
    benchmark.extra_info["attr_sweep"] = records
    # The map's advantage grows with attribute count.
    speedups = [r["speedup"] for r in records]
    assert speedups[-1] > speedups[0]
    assert all(s > 1 for s in speedups[1:])


def test_attribute_width_sweep(benchmark, tmp_path_factory):
    tmp = tmp_path_factory.mktemp("shape_width")
    n_rows = scaled_rows(8_000)

    def sweep():
        records = []
        for width in WIDTHS:
            path = tmp / f"w{width}.csv"
            schema = generate_csv(
                path,
                uniform_table_spec(10, n_rows, width=width, seed=2),
            )
            warm, base = _warm_vs_baseline(path, schema, 9)
            records.append(
                {
                    "width": width,
                    "file_kib": path.stat().st_size // 1024,
                    "baseline_s": base,
                    "pm_warm_s": warm,
                    "speedup": base / warm if warm else float("inf"),
                }
            )
        return records

    records = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_records("E8b: attribute-width sweep", records)
    benchmark.extra_info["width_sweep"] = records
    assert all(r["speedup"] > 1 for r in records)


def test_file_size_scaling(benchmark, tmp_path_factory):
    """Supplementary: in-situ costs scale linearly with file size while
    warm map+cache queries stay sublinear (they skip the raw file)."""
    tmp = tmp_path_factory.mktemp("shape_rows")
    sizes = [scaled_rows(n) for n in (5_000, 10_000, 20_000)]

    def sweep():
        records = []
        for n_rows in sizes:
            path = tmp / f"r{n_rows}.csv"
            schema = generate_csv(
                path, uniform_table_spec(10, n_rows, seed=3)
            )
            engine = PostgresRaw()
            engine.register_csv("t", path, schema)
            cold = engine.query("SELECT a5 FROM t").metrics.total_seconds
            warm = engine.query("SELECT a5 FROM t").metrics.total_seconds
            records.append(
                {"rows": n_rows, "cold_s": cold, "warm_s": warm}
            )
        return records

    records = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_records("E8c: file-size scaling", records)
    benchmark.extra_info["size_sweep"] = records
    colds = [r["cold_s"] for r in records]
    assert colds[-1] > colds[0]  # cold cost grows with the file
    warms = [r["warm_s"] for r in records]
    assert all(w < c for w, c in zip(warms, colds))
