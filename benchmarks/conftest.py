"""Shared benchmark fixtures.

Every benchmark regenerates one table/figure of the paper (see
DESIGN.md §3).  Dataset sizes scale with ``REPRO_BENCH_SCALE`` (default
1.0): absolute numbers are Python-scale, the *shapes* are what the
benchmarks assert and print.

Key benchmarks also emit a machine-readable ``BENCH_<name>.json``
(:func:`emit_bench_artifact`) into ``$REPRO_BENCH_ARTIFACT_DIR``
(default ``bench_artifacts/``): qps, TTFB, speedups, the scale and the
python version — CI uploads the directory as a workflow artifact, so
the repo's perf trajectory accumulates run over run.  When a committed
baseline exists under ``benchmarks/baselines/``, an informational
delta against it is printed (never a gate: hosted runners are noisy).

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path

import pytest

from repro import generate_csv, uniform_table_spec

#: Multiplier for dataset sizes (rows).
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Default benchmark table: rows x attrs.
BASE_ROWS = int(30_000 * SCALE)
BASE_ATTRS = 10


def scaled_rows(n: int) -> int:
    return max(int(n * SCALE), 100)


@pytest.fixture(scope="session")
def bench_csv(tmp_path_factory):
    """The shared raw file: BASE_ROWS x BASE_ATTRS uniform integers."""
    path = tmp_path_factory.mktemp("bench") / "bench.csv"
    spec = uniform_table_spec(
        n_attrs=BASE_ATTRS, n_rows=BASE_ROWS, width=8, seed=4242
    )
    schema = generate_csv(path, spec)
    return path, schema


def print_records(title: str, records: list[dict]) -> None:
    """Render a figure's data as an aligned text table (with -s)."""
    print(f"\n=== {title} ===")
    if not records:
        print("(no rows)")
        return
    keys = list(records[0])
    widths = {
        k: max(len(str(k)), *(len(_fmt(r[k])) for r in records))
        for k in keys
    }
    print("  ".join(str(k).ljust(widths[k]) for k in keys))
    for record in records:
        print("  ".join(_fmt(record[k]).ljust(widths[k]) for k in keys))


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def emit_bench_artifact(name: str, record: dict) -> None:
    """Write this run's key metrics as ``BENCH_<name>.json``.

    ``record`` is a flat dict of the benchmark's headline numbers
    (qps, TTFB seconds, speedup factors, ...); run context (scale,
    python version, platform, core count) is stamped alongside.  The
    artifact lands in ``$REPRO_BENCH_ARTIFACT_DIR`` (default
    ``bench_artifacts/``) for CI to upload.
    """
    payload = {
        "bench": name,
        "scale": SCALE,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cores": os.cpu_count(),
        **record,
    }
    out_dir = Path(
        os.environ.get("REPRO_BENCH_ARTIFACT_DIR", "bench_artifacts")
    )
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nbench artifact: {path}")
    baseline_path = Path(__file__).parent / "baselines" / f"BENCH_{name}.json"
    if baseline_path.exists():
        baseline = json.loads(baseline_path.read_text())
        _print_baseline_delta(name, payload, baseline)


#: Keys where bigger is better; a drop beyond the threshold draws a CI
#: warning annotation (never a failure: hosted runners are noisy).
_HIGHER_IS_BETTER = ("qps", "speedup")
_REGRESSION_THRESHOLD_PCT = 15.0


def _print_baseline_delta(name: str, current: dict, baseline: dict) -> None:
    """Informational drift report against the committed baseline.

    Higher-is-better metrics (qps, speedups) that regress more than
    ``_REGRESSION_THRESHOLD_PCT`` are flagged — as a GitHub
    ``::warning::`` annotation under CI — but never fail the run.
    """
    print(f"=== {name}: delta vs committed baseline (informational) ===")
    comparable = baseline.get("scale") == current.get("scale")
    if not comparable:
        print(
            f"  (baseline scale {baseline.get('scale')} != "
            f"run scale {current.get('scale')}; numbers not comparable)"
        )
    for key in sorted(current):
        value, base = current[key], baseline.get(key)
        numeric = (
            isinstance(value, (int, float))
            and not isinstance(value, bool)
            and isinstance(base, (int, float))
            and not isinstance(base, bool)
        )
        if not numeric or base == 0:
            continue
        delta = (value - base) / base * 100.0
        print(f"  {key}: {_fmt(value)} vs {_fmt(base)} ({delta:+.1f}%)")
        regressed = (
            comparable
            and any(tag in key for tag in _HIGHER_IS_BETTER)
            and delta < -_REGRESSION_THRESHOLD_PCT
        )
        if regressed:
            _warn_regression(name, key, value, base, delta)


def _warn_regression(
    name: str, key: str, value: float, base: float, delta: float
) -> None:
    message = (
        f"{name}: {key} regressed {delta:+.1f}% vs committed baseline "
        f"({_fmt(value)} vs {_fmt(base)}); advisory only"
    )
    if os.environ.get("GITHUB_ACTIONS") == "true":
        # GitHub workflow-command annotation; shows on the run summary.
        print(f"::warning title=bench regression::{message}")
    else:
        print(f"  WARNING: {message}")
