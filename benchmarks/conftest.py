"""Shared benchmark fixtures.

Every benchmark regenerates one table/figure of the paper (see
DESIGN.md §3).  Dataset sizes scale with ``REPRO_BENCH_SCALE`` (default
1.0): absolute numbers are Python-scale, the *shapes* are what the
benchmarks assert and print.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import os

import pytest

from repro import generate_csv, uniform_table_spec

#: Multiplier for dataset sizes (rows).
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

#: Default benchmark table: rows x attrs.
BASE_ROWS = int(30_000 * SCALE)
BASE_ATTRS = 10


def scaled_rows(n: int) -> int:
    return max(int(n * SCALE), 100)


@pytest.fixture(scope="session")
def bench_csv(tmp_path_factory):
    """The shared raw file: BASE_ROWS x BASE_ATTRS uniform integers."""
    path = tmp_path_factory.mktemp("bench") / "bench.csv"
    spec = uniform_table_spec(
        n_attrs=BASE_ATTRS, n_rows=BASE_ROWS, width=8, seed=4242
    )
    schema = generate_csv(path, spec)
    return path, schema


def print_records(title: str, records: list[dict]) -> None:
    """Render a figure's data as an aligned text table (with -s)."""
    print(f"\n=== {title} ===")
    if not records:
        print("(no rows)")
        return
    keys = list(records[0])
    widths = {
        k: max(len(str(k)), *(len(_fmt(r[k])) for r in records))
        for k in keys
    }
    print("  ".join(str(k).ljust(widths[k]) for k in keys))
    for record in records:
        print("  ".join(_fmt(record[k]).ljust(widths[k]) for k in keys))


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)
