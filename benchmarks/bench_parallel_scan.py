"""E11 — parallel chunked raw scan (repro.parallel).

OLA-RAW's point applied to PostgresRaw: cold in-situ scans should use
every core.  Two sweeps over worker counts (1/2/4/8) measure

* **cold-scan latency** — first query over a fresh file, where the pool
  parallelizes line indexing, tokenizing, parsing and conversion;
* **repeat-query latency** — the adaptively-built structures must make
  the second query equally cheap on serial and parallel engines (the
  merged positional map/cache are identical by construction).

Shapes: a *wide* file (32 attributes — lots of tokenizing per tuple)
and a *narrow* one (4 attributes), matching the paper's observation
that attribute count drives raw-access cost.  Thread and process
backends are both swept; threads only win on GIL-free builds or
I/O-bound scans, processes are the CPU-scaling backend.  Speedup
assertions are gated on the cores actually available — on a single-core
host the benchmark only verifies result equality and reports overhead.
"""

import os

import pytest

from repro import (
    PostgresRaw,
    PostgresRawConfig,
    generate_csv,
    uniform_table_spec,
)

from .conftest import emit_bench_artifact, print_records, scaled_rows

WORKER_COUNTS = [1, 2, 4, 8]
CHUNK_BYTES = 64 * 1024  # small enough that scaled-down CI files still chunk
CORES = os.cpu_count() or 1


def _cold_and_repeat(path, schema, sql, workers, backend):
    config = PostgresRawConfig(
        scan_workers=workers,
        parallel_chunk_bytes=CHUNK_BYTES,
        parallel_backend=backend,
    )
    # The engine recycles one scan pool across every query it plans;
    # closing the engine (context exit) is what tears the pool down.
    with PostgresRaw(config) as engine:
        engine.register_csv("t", path, schema)
        cold = engine.query(sql)
        repeat = engine.query(sql)
        # A second cold scan on the *same engine* (fresh table state over
        # the same file) reuses the live pool: the thread/fork start-up
        # paid by the first dispatch is amortized away.
        engine.register_csv("t2", path, schema)
        cold2 = engine.query(sql.replace("FROM t ", "FROM t2 "))
    return cold, repeat, cold2


def _sweep(path, schema, sql, backend):
    records = []
    reference = None
    for workers in WORKER_COUNTS:
        cold, repeat, cold2 = _cold_and_repeat(
            path, schema, sql, workers, backend
        )
        if reference is None:
            reference = cold
        assert cold.rows == reference.rows  # parallel == serial, always
        assert cold2.rows == reference.rows  # recycled pool, same rows
        records.append(
            {
                "backend": backend,
                "workers": workers,
                "chunks": cold.metrics.parallel_chunks,
                "cold_s": cold.metrics.total_seconds,
                "speedup": (
                    reference.metrics.total_seconds
                    / cold.metrics.total_seconds
                ),
                "warm_pool_s": cold2.metrics.total_seconds,
                "repeat_s": repeat.metrics.total_seconds,
            }
        )
    return records


@pytest.mark.parametrize(
    "label,n_attrs,rows",
    [("wide", 32, 120_000), ("narrow", 4, 120_000)],
)
def test_parallel_scan_sweep(
    benchmark, tmp_path_factory, label, n_attrs, rows
):
    tmp = tmp_path_factory.mktemp(f"par_{label}")
    n_rows = scaled_rows(rows)
    path = tmp / f"{label}.csv"
    schema = generate_csv(
        path, uniform_table_spec(n_attrs, n_rows, width=8, seed=31)
    )
    sql = f"SELECT a1, a{n_attrs - 1} FROM t WHERE a0 < 500000"

    def sweep():
        records = []
        for backend in ("thread", "process"):
            records.extend(_sweep(path, schema, sql, backend))
        return records

    records = benchmark.pedantic(sweep, rounds=1, iterations=1)
    title = (
        f"E11: parallel cold scan, {label} file "
        f"({n_attrs} attrs x {n_rows} rows, "
        f"{path.stat().st_size >> 20} MiB, {CORES} cores)"
    )
    print_records(title, records)
    benchmark.extra_info[f"parallel_{label}"] = records
    emit_bench_artifact(
        f"parallel_scan_{label}",
        {
            "rows": n_rows,
            "serial_cold_s": records[0]["cold_s"],
            **{
                f"{r['backend']}_w{r['workers']}_speedup": r["speedup"]
                for r in records
            },
        },
    )

    serial_cold = records[0]["cold_s"]
    serial_repeat = records[0]["repeat_s"]
    for r in records:
        # The adaptive repeat query must stay fast regardless of how the
        # structures were built (serial or merged from chunks).  Since
        # the vectorized scan kernels collapsed the cold scan itself,
        # "fast" is measured against the serial engine's repeat, not the
        # cold scan: structures merged from parallel chunks must serve
        # warm queries as well as serially-built ones.
        assert r["repeat_s"] < serial_repeat * 2
    if CORES >= 2:
        # The acceptance check needs real cores: scan_workers=4 on the
        # process backend must beat the serial cold scan — provided the
        # file was big enough for the pool to engage at all.
        four = [
            r
            for r in records
            if r["backend"] == "process" and r["workers"] == 4
        ]
        assert four
        if four[0]["chunks"] > 1:
            assert four[0]["speedup"] > 1.1
    else:
        # Single-core host: no speedup is physically possible, so only
        # bound the thread pool's orchestration overhead (the process
        # backend pays fork + result pickling, which is amortized by
        # cores it does not have here — reported, not asserted).
        thread_worst = max(
            r["cold_s"] for r in records if r["backend"] == "thread"
        )
        assert thread_worst < serial_cold * 2.5
