"""E13 — end-to-end streaming query path (cursors + streaming merge).

What OLA-RAW motivates (incremental result delivery makes in-situ
exploration usable) made measurable: on a *cold parallel scan* of a
large raw file, the streaming path must

* deliver its **first batch** well before the full-materialization
  latency of the same query (time-to-first-batch << total), and
* hold **bounded memory** — the chunk merge keeps at most the in-flight
  window of chunk results alive and the cursor's handoff queue is a few
  batches deep, so peak allocation while streaming is far below
  materializing the whole result set.

Both properties are asserted, not just reported: TTFB against the
materialized run's wall clock, peak allocation via ``tracemalloc``
(Python-side high-water mark, the layer where the old collect-then-
stitch barrier and ``QueryResult.from_batches`` used to materialize).
"""

import os
import tracemalloc


from repro import (
    PostgresRaw,
    PostgresRawConfig,
    generate_csv,
    uniform_table_spec,
)

from .conftest import emit_bench_artifact, print_records, scaled_rows

CHUNK_BYTES = 64 * 1024
CORES = os.cpu_count() or 1
WORKERS = min(4, CORES) if CORES > 1 else 2


def _config():
    return PostgresRawConfig(
        scan_workers=WORKERS,
        parallel_chunk_bytes=CHUNK_BYTES,
        stream_queue_batches=4,
    )


def _fresh_engine(path, schema, name):
    engine = PostgresRaw(_config())
    engine.register_csv(name, path, schema)
    return engine


def _measure_materialized(path, schema, sql):
    """Cold materialized query: peak allocation + wall clock."""
    with _fresh_engine(path, schema, "t") as engine:
        tracemalloc.start()
        result = engine.query(sql)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return {
            "rows": len(result),
            "total_s": result.metrics.total_seconds,
            "peak_mib": peak / (1 << 20),
        }


def _measure_streaming(path, schema, sql):
    """Cold streamed query: consume batch-at-a-time, retain nothing."""
    with _fresh_engine(path, schema, "t") as engine:
        tracemalloc.start()
        cursor = engine.query_stream(sql)
        n_rows = 0
        first_batch_rows = None
        for batch in cursor.batches():
            if first_batch_rows is None:
                first_batch_rows = batch.num_rows
            n_rows += batch.num_rows
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        metrics = cursor.metrics
        return {
            "rows": n_rows,
            "first_batch_rows": first_batch_rows or 0,
            "ttfb_s": metrics.time_to_first_batch,
            "total_s": metrics.total_seconds,
            "chunks": metrics.parallel_chunks,
            "peak_mib": peak / (1 << 20),
        }


def test_streaming_ttfb_and_bounded_memory(benchmark, tmp_path_factory):
    tmp = tmp_path_factory.mktemp("streaming")
    n_rows = scaled_rows(120_000)
    path = tmp / "stream.csv"
    schema = generate_csv(
        path, uniform_table_spec(n_attrs=10, n_rows=n_rows, width=8, seed=97)
    )
    # Full-width projection: the materialized result then costs a row
    # tuple + 10 boxed values per record, dwarfing the (shared) cost of
    # building the adaptive structures — the contrast under test.
    sql = (
        "SELECT a0, a1, a2, a3, a4, a5, a6, a7, a8, a9 "
        "FROM t WHERE a0 >= 0"
    )

    def run():
        materialized = _measure_materialized(path, schema, sql)
        streamed = _measure_streaming(path, schema, sql)
        return [
            {"mode": "materialized", **materialized},
            {"mode": "streamed", **streamed},
        ]

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    materialized, streamed = records
    title = (
        "E13: streaming vs materialized cold parallel scan "
        f"({n_rows} rows, {path.stat().st_size >> 20} MiB, "
        f"{WORKERS} workers, {CORES} cores)"
    )
    print_records(title, records)
    benchmark.extra_info["streaming"] = records
    emit_bench_artifact(
        "streaming",
        {
            "rows": streamed["rows"],
            "ttfb_s": streamed["ttfb_s"],
            "streamed_total_s": streamed["total_s"],
            "materialized_total_s": materialized["total_s"],
            "streamed_peak_mib": streamed["peak_mib"],
            "materialized_peak_mib": materialized["peak_mib"],
        },
    )

    # Identity: streaming delivers every row the materialized run does.
    assert streamed["rows"] == materialized["rows"] > 0

    # Time-to-first-batch: the whole point.  The first batch arrives
    # while later chunks are still being scanned, so TTFB must land
    # well inside the materialized run's wall clock (which is also the
    # streamed run's own completion time, asserted for good measure).
    assert streamed["ttfb_s"] is not None
    if streamed["chunks"] > 1:
        assert streamed["ttfb_s"] < materialized["total_s"] * 0.75
        assert streamed["ttfb_s"] < streamed["total_s"]

    # Bounded memory: consuming batch-at-a-time must allocate far less
    # than materializing the result set (window x chunk + a few queued
    # batches vs every row tuple at once).  The strict ratio needs the
    # result set to dominate the fixed costs (decoded file, adaptive
    # structures — paid by both modes), so it is gated on scale; the
    # direction must hold regardless.
    assert streamed["peak_mib"] < materialized["peak_mib"]
    if n_rows >= 50_000:
        assert streamed["peak_mib"] < materialized["peak_mib"] * 0.6
