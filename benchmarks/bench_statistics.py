"""E10 — on-the-fly statistics and plan quality (paper §3.3).

"Optimizers rely on statistics to create good query plans ...
PostgresRaw creates statistics on-the-fly."

A skewed fact table joined with a small dimension: with statistics the
greedy optimizer starts from the (filtered) small side and builds the
hash table on it; without statistics it falls back to defaults.  We
measure the join both ways and report the plan shapes.
"""

import pytest

from repro import (
    PostgresRaw,
    PostgresRawConfig,
    generate_csv,
    uniform_table_spec,
)

from .conftest import print_records, scaled_rows

# The predicate on the fact table is weak (keeps every row), but an
# uninformed optimizer prices any range predicate at the textbook 33%
# default — making the filtered fact look *smaller* than the unfiltered
# (actually tiny) dimension.  On-the-fly statistics reveal the truth:
# the dimension has ~2% of the fact's rows and the fact filter keeps
# everything, so the informed plan starts from the dimension.
JOIN = (
    "SELECT COUNT(*) AS n FROM fact a_fact JOIN dim z_dim "
    "ON a_fact.a0 = z_dim.a0 WHERE a_fact.a1 >= 0"
)


@pytest.fixture(scope="module")
def star_schema(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("stats")
    fact_path = tmp / "fact.csv"
    fact_schema = generate_csv(
        fact_path, uniform_table_spec(4, scaled_rows(20_000), seed=5)
    )
    dim_path = tmp / "dim.csv"
    dim_schema = generate_csv(
        dim_path, uniform_table_spec(4, scaled_rows(400), seed=6)
    )
    return fact_path, fact_schema, dim_path, dim_schema


def _engine(star_schema, with_stats):
    fact_path, fact_schema, dim_path, dim_schema = star_schema
    engine = PostgresRaw(
        PostgresRawConfig(enable_statistics=with_stats)
    )
    engine.register_csv("fact", fact_path, fact_schema)
    engine.register_csv("dim", dim_path, dim_schema)
    # Warm the data structures AND (when enabled) the statistics.
    engine.query("SELECT COUNT(a1) FROM fact WHERE a0 >= 0")
    engine.query("SELECT COUNT(a0) FROM dim")
    return engine


def test_statistics_guide_join_order(benchmark, star_schema):
    with_stats = _engine(star_schema, True)
    without_stats = _engine(star_schema, False)

    def run_both():
        a = with_stats.query(JOIN)
        b = without_stats.query(JOIN)
        assert a.scalar() == b.scalar()
        return a.metrics.total_seconds, b.metrics.total_seconds

    stats_s, nostats_s = benchmark.pedantic(
        run_both, rounds=3, iterations=1
    )
    plan_with = with_stats.explain(JOIN)
    plan_without = without_stats.explain(JOIN)
    records = [
        {"arm": "with on-the-fly statistics", "join_s": stats_s},
        {"arm": "without statistics", "join_s": nostats_s},
    ]
    print_records("E10: statistics and plan quality", records)
    print("\nplan WITH statistics:\n" + plan_with)
    print("\nplan WITHOUT statistics:\n" + plan_without)
    benchmark.extra_info["statistics"] = records

    # With statistics the hash table is built on the small dimension
    # (build side = last scan in the rendered tree) and the big fact
    # table streams as the probe.  Without statistics the defaults
    # misprice the weak fact filter and the build lands on the fact.
    informed_scans = [l for l in plan_with.splitlines() if "RawScan" in l]
    assert "dim" in informed_scans[-1]
    assert "fact" in informed_scans[0]
    blind_scans = [l for l in plan_without.splitlines() if "RawScan" in l]
    assert "fact" in blind_scans[-1]


def test_statistics_collection_overhead(benchmark, bench_csv):
    """The cost of maintaining statistics during a scan is a small
    fraction of the query ('minimize the overhead of creating
    statistics during query processing')."""
    path, schema = bench_csv

    def cold_with_stats():
        engine = PostgresRaw()
        engine.register_csv("t", path, schema)
        return engine.query("SELECT a0, a5 FROM t WHERE a2 < 800000").metrics

    metrics = benchmark.pedantic(cold_with_stats, rounds=3, iterations=1)
    assert metrics.nodb_seconds < 0.5 * metrics.total_seconds
    print(
        f"\nnodb (stats+map+cache upkeep) = {metrics.nodb_seconds:.4f}s "
        f"of {metrics.total_seconds:.4f}s total"
    )
