"""E4 / Part II "Updates" — append-and-query without reloading.

The raw file is appended to *outside* the engine; the next query must
see the new rows.  Paper shape: PostgresRaw reconciles incrementally —
the post-append query costs roughly the tail, not the file — while a
conventional DBMS must re-run its loader to see the new data at all.
"""

import pytest

from repro import PostgresRaw, append_csv_rows
from repro.baselines import ConventionalDBMS, POSTGRESQL
from repro.workload.queries import select_project_sql

from .conftest import print_records, scaled_rows


@pytest.fixture
def appendable_csv(bench_csv, tmp_path):
    """A private copy of the bench file that tests may mutate."""
    path, schema = bench_csv
    copy = tmp_path / "mutable.csv"
    copy.write_bytes(path.read_bytes())
    return copy, schema


def _tail_rows(schema, count, start=10_000_000):
    width = len(schema)
    return [
        tuple(start + i * width + j for j in range(width))
        for i in range(count)
    ]


def test_append_reconciliation_cost(benchmark, appendable_csv):
    path, schema = appendable_csv
    engine = PostgresRaw()
    engine.register_csv("t", path, schema)
    query = select_project_sql("t", ["a1"])
    baseline_cold = engine.query(query).metrics.total_seconds
    warm = engine.query(query).metrics.total_seconds
    tail = _tail_rows(schema, scaled_rows(500))

    state = {"appended": False}

    def append_and_query():
        if not state["appended"]:
            append_csv_rows(path, tail, schema)
            state["appended"] = True
        return engine.query(query).metrics

    metrics = benchmark.pedantic(append_and_query, rounds=1, iterations=1)
    post_append = metrics.total_seconds
    records = [
        {"phase": "cold full scan", "seconds": baseline_cold},
        {"phase": "warm (pre-append)", "seconds": warm},
        {"phase": "post-append (tail only)", "seconds": post_append},
    ]
    print_records("Part II Updates: append reconciliation", records)
    benchmark.extra_info["updates"] = records
    # Tail work is far cheaper than the original cold scan.
    assert post_append < baseline_cold
    # Only the appended rows were converted.
    assert metrics.fields_converted <= len(tail) * len(schema)


def test_append_visibility_vs_conventional(
    benchmark, appendable_csv, tmp_path_factory
):
    """A conventional engine must reload to see appended rows; the
    in-situ engine sees them on the next query."""
    path, schema = appendable_csv
    engine = PostgresRaw()
    engine.register_csv("t", path, schema)
    before = engine.query("SELECT COUNT(*) AS n FROM t").scalar()

    dbms = ConventionalDBMS(
        POSTGRESQL, storage_dir=tmp_path_factory.mktemp("upd_pg")
    )
    dbms.load_csv("t", path, schema)

    tail = _tail_rows(schema, scaled_rows(300))
    append_csv_rows(path, tail, schema)

    def in_situ_sees_appends():
        return engine.query("SELECT COUNT(*) AS n FROM t").scalar()

    count = benchmark.pedantic(in_situ_sees_appends, rounds=1, iterations=1)
    assert count == before + len(tail)
    # The loaded engine still serves the stale snapshot.
    stale = dbms.query("SELECT COUNT(*) AS n FROM t").scalar()
    assert stale == before
    records = [
        {"system": "PostgresRaw (next query)", "rows_seen": count},
        {"system": "PostgreSQL (no reload)", "rows_seen": stale},
    ]
    print_records("Part II Updates: visibility after external append", records)


def test_rewrite_invalidation_cost(benchmark, appendable_csv):
    """Pointing the engine at 'a new data file' (full rewrite) rebuilds
    from scratch — the honest cost of invalidation."""
    path, schema = appendable_csv
    engine = PostgresRaw()
    engine.register_csv("t", path, schema)
    query = select_project_sql("t", ["a1"])
    engine.query(query)
    warm = engine.query(query).metrics.total_seconds

    # Rewrite: reverse the data lines (same size, new content).
    lines = path.read_text().splitlines(keepends=True)
    path.write_text(lines[0] + "".join(reversed(lines[1:])))

    def post_rewrite_query():
        return engine.query(query).metrics.total_seconds

    rebuilt = benchmark.pedantic(post_rewrite_query, rounds=1, iterations=1)
    records = [
        {"phase": "warm (before rewrite)", "seconds": warm},
        {"phase": "after rewrite (cold again)", "seconds": rebuilt},
    ]
    print_records("Part II Updates: rewrite invalidation", records)
    assert rebuilt > warm  # structures were dropped and rebuilt
