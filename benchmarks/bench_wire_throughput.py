"""E14 — wire-protocol serving throughput (repro.server / repro.client).

The socket front end against the in-process baseline it wraps: N
concurrent socket clients vs N in-process sessions hammering the same
warmed service with the hot-query batch, reporting queries/sec for both
paths plus the wire's overhead factor — and, for the streaming
contract, per-connection time-to-first-row of a large streamed result
against the same query's full materialization (the first frame must
arrive while the server is still producing, with >= 2 socket clients
sharing one service's adaptive state).

The wire path pays JSON encode/decode and two socket hops per frame, so
it will not match in-process throughput; what must hold is that it
*scales* (more clients, more qps until the service saturates) and that
streaming delivers first rows early.
"""

from __future__ import annotations

import os
import threading

import repro.client
from repro import PostgresRawConfig, PostgresRawService, RawServer

from .conftest import print_records, scaled_rows

CLIENT_COUNTS = [1, 2, 4]
CORES = os.cpu_count() or 1

#: Hot batch: all coverable by the warmed structures.
HOT_QUERIES = [
    "SELECT SUM(a2) AS s FROM t WHERE a1 < 600000",
    "SELECT a0, a3 FROM t WHERE a2 < 150000",
    "SELECT AVG(a4) AS m FROM t WHERE a0 < 800000",
    "SELECT COUNT(*) AS n FROM t WHERE a3 < 400000",
]

BATCHES_PER_CLIENT = 4

#: The large streamed result used for the TTFB contrast.
STREAM_SQL = "SELECT a0, a1, a2 FROM t"


def _run_inprocess(service, n_clients: int) -> tuple[float, int]:
    from repro.core.metrics import Stopwatch

    start = threading.Barrier(n_clients + 1, timeout=60)
    errors: list = []

    def client():
        session = service.session()
        try:
            start.wait()
            for _ in range(BATCHES_PER_CLIENT):
                for sql in HOT_QUERIES:
                    session.query(sql)
        except Exception as exc:
            errors.append(repr(exc))

    threads = [threading.Thread(target=client) for _ in range(n_clients)]
    for t in threads:
        t.start()
    start.wait()
    watch = Stopwatch()
    for t in threads:
        t.join(timeout=300)
    wall = watch.elapsed()
    assert errors == []
    return wall, n_clients * BATCHES_PER_CLIENT * len(HOT_QUERIES)


def _run_wire(server, n_clients: int) -> tuple[float, int]:
    from repro.core.metrics import Stopwatch

    start = threading.Barrier(n_clients + 1, timeout=60)
    errors: list = []

    def client():
        try:
            with repro.client.connect(port=server.port) as conn:
                start.wait()
                for _ in range(BATCHES_PER_CLIENT):
                    for sql in HOT_QUERIES:
                        conn.query(sql)
        except Exception as exc:
            errors.append(repr(exc))

    threads = [threading.Thread(target=client) for _ in range(n_clients)]
    for t in threads:
        t.start()
    start.wait()
    watch = Stopwatch()
    for t in threads:
        t.join(timeout=300)
    wall = watch.elapsed()
    assert errors == []
    return wall, n_clients * BATCHES_PER_CLIENT * len(HOT_QUERIES)


def _measure_ttfb(server, results: list, idx: int) -> None:
    """One socket client: time-to-first-row of a streamed large result
    vs the same query fully materialized, on one connection."""
    from repro.core.metrics import Stopwatch

    with repro.client.connect(port=server.port) as conn:
        watch = Stopwatch()
        with conn.cursor(STREAM_SQL) as cursor:
            first = cursor.fetchone()
            ttfb = watch.elapsed()
            rows = 1 + len(cursor.fetchall().rows)
        stream_total = watch.elapsed()
        assert first is not None
        watch.restart()
        materialized = conn.query(STREAM_SQL)
        materialized_wall = watch.elapsed()
        assert len(materialized) == rows
        results[idx] = {
            "client": idx,
            "rows": rows,
            "ttfb_s": ttfb,
            "stream_s": stream_total,
            "materialized_s": materialized_wall,
        }


def test_wire_throughput(benchmark, tmp_path_factory):
    from repro import generate_csv, uniform_table_spec

    tmp = tmp_path_factory.mktemp("wire")
    n_rows = scaled_rows(20_000)
    path = tmp / "t.csv"
    schema = generate_csv(
        path, uniform_table_spec(n_attrs=6, n_rows=n_rows, width=8, seed=55)
    )
    config = PostgresRawConfig(
        server_port=0,
        memory_budget=256 * 1024 * 1024,
        max_concurrent_queries=8,
        admission_queue_depth=64,
    )

    def sweep():
        records = []
        with PostgresRawService(config) as service:
            service.register_csv("t", path, schema)
            warm = service.session()
            for sql in HOT_QUERIES + [STREAM_SQL]:
                warm.query(sql)
            server = RawServer(service).start()
            try:
                for n_clients in CLIENT_COUNTS:
                    wall_in, queries = _run_inprocess(service, n_clients)
                    wall_wire, _ = _run_wire(server, n_clients)
                    qps_in = queries / wall_in if wall_in else float("inf")
                    qps_wire = (
                        queries / wall_wire if wall_wire else float("inf")
                    )
                    records.append(
                        {
                            "clients": n_clients,
                            "queries": queries,
                            "inproc_qps": qps_in,
                            "wire_qps": qps_wire,
                            "wire_overhead_x": qps_in / qps_wire
                            if qps_wire
                            else float("inf"),
                        }
                    )
                # TTFB: two concurrent socket clients streaming a large
                # result over one shared service.
                ttfb_records: list = [None, None]
                threads = [
                    threading.Thread(
                        target=_measure_ttfb, args=(server, ttfb_records, i)
                    )
                    for i in range(2)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(timeout=120)
                assert all(r is not None for r in ttfb_records)
                server_stats = server.connection_stats()
                sched = service.scheduler.stats()
            finally:
                server.stop()
            # Clean shutdown: nothing leaked anywhere in the stack.
            assert service.cursor_stats()["open"] == 0
            assert sched["active"] == 0 and sched["waiting"] == 0
            assert server_stats["open"] <= 2  # TTFB conns may linger briefly
            records.append(
                {
                    "clients": "server",
                    "queries": server_stats["queries"],
                    "inproc_qps": server_stats["rows_sent"],
                    "wire_qps": server_stats["frames_sent"],
                    "wire_overhead_x": server_stats["errors_sent"],
                }
            )
        return {"throughput": records, "ttfb": ttfb_records}

    report = benchmark.pedantic(sweep, rounds=1, iterations=1)
    records = report["throughput"]
    print_records(
        f"E14: wire vs in-process throughput, {n_rows} rows x 6 attrs, "
        f"{CORES} cores (last row: queries, rows, frames, errors)",
        records,
    )
    print_records(
        "E14b: per-connection TTFB, 2 concurrent socket clients "
        "streaming the full table",
        report["ttfb"],
    )
    benchmark.extra_info["wire_throughput"] = report

    ttfb_rows = report["ttfb"]
    assert len(ttfb_rows) == 2
    for row in ttfb_rows:
        # Delivery is incremental: the first row lands strictly before
        # the stream completes, and nothing is lost on the wire.
        assert row["ttfb_s"] < row["stream_s"]
        assert row["rows"] == n_rows
    # The streaming contract over the wire: the first row arrives
    # before the same query can fully materialize — the first frame is
    # on the socket while the server is still producing.  On a 1-core
    # host two contending clients can invert one pair by scheduling
    # noise, so the per-client gate needs real cores (same idiom as the
    # parallel/concurrent benchmarks).
    if CORES >= 2:
        for row in ttfb_rows:
            assert row["ttfb_s"] < row["materialized_s"]
    else:
        assert any(r["ttfb_s"] < r["materialized_s"] for r in ttfb_rows)
    by_clients = {r["clients"]: r for r in records if "wire_qps" in r}
    # The wire must not collapse under concurrency: 4 clients never drop
    # below half of one client's throughput.
    assert by_clients[4]["wire_qps"] > by_clients[1]["wire_qps"] * 0.5
