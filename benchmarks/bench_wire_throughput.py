"""E14 — wire-protocol serving throughput (repro.server / repro.client).

The socket front end against the in-process baseline it wraps, across
protocol v2's negotiated dimensions:

* **Encodings** — N concurrent socket clients vs N in-process sessions
  hammering the same warmed service with the hot-query batch, once per
  ROWS encoding (the JSON floor vs v2's binary columnar vectors),
  reporting queries/sec and each encoding's overhead factor.  Binary
  skips the per-value serialize/parse on both ends, so its overhead
  factor must not exceed JSON's by more than noise — and on row-heavy
  results it should cut it.
* **Multiplexing** — K cursors streaming a large result over ONE
  connection (demultiplexed by qid) vs the same K streams on K
  separate connections: row-identical, with one connection's wall
  clock in the same ballpark.
* **Pooling** — per-query ``connect()`` vs a warmed
  :class:`repro.client.ConnectionPool`: the pool amortizes TCP +
  handshake + session setup, so pooled qps must win.
* **Streaming** — per-connection time-to-first-row of a large streamed
  result against the same query's full materialization (the first
  frame must arrive while the server is still producing, with >= 2
  socket clients sharing one service's adaptive state).

Emits ``BENCH_wire_throughput.json`` (see ``conftest.emit_bench_artifact``)
so CI accumulates the qps/TTFB trajectory.
"""

import os
import threading

import repro.client
from repro import PostgresRawConfig, PostgresRawService, RawServer
from repro.client import ConnectionPool

from .conftest import emit_bench_artifact, print_records, scaled_rows

CLIENT_COUNTS = [1, 2, 4]
CORES = os.cpu_count() or 1

#: Hot batch: all coverable by the warmed structures.  The last two
#: return thousands of rows, so the ROWS encoding cost is on the
#: scoreboard, not just connection round trips.
HOT_QUERIES = [
    "SELECT SUM(a2) AS s FROM t WHERE a1 < 600000",
    "SELECT a0, a3 FROM t WHERE a2 < 150000",
    "SELECT AVG(a4) AS m FROM t WHERE a0 < 800000",
    "SELECT COUNT(*) AS n FROM t WHERE a3 < 400000",
    "SELECT a0, a1 FROM t WHERE a2 < 400000",
    "SELECT a1, a2, a4 FROM t WHERE a0 < 500000",
]

BATCHES_PER_CLIENT = 3

#: The large streamed result used for the TTFB and multiplex contrasts.
STREAM_SQL = "SELECT a0, a1, a2 FROM t"

#: Cursors per connection in the multiplex leg.
MUX_STREAMS = 3

#: Queries in the pooled-vs-fresh-connection leg.
POOL_QUERIES = 24
POOL_SQL = "SELECT COUNT(*) AS n FROM t WHERE a1 < 500000"


def _run_inprocess(service, n_clients: int) -> tuple[float, int]:
    from repro.core.metrics import Stopwatch

    start = threading.Barrier(n_clients + 1, timeout=60)
    errors: list = []

    def client():
        session = service.session()
        try:
            start.wait()
            for _ in range(BATCHES_PER_CLIENT):
                for sql in HOT_QUERIES:
                    session.query(sql)
        except Exception as exc:
            errors.append(repr(exc))

    threads = [threading.Thread(target=client) for _ in range(n_clients)]
    for t in threads:
        t.start()
    start.wait()
    watch = Stopwatch()
    for t in threads:
        t.join(timeout=300)
    wall = watch.elapsed()
    assert errors == []
    return wall, n_clients * BATCHES_PER_CLIENT * len(HOT_QUERIES)


def _run_wire(server, n_clients: int, encodings) -> tuple[float, int]:
    from repro.core.metrics import Stopwatch

    start = threading.Barrier(n_clients + 1, timeout=60)
    errors: list = []

    def client():
        try:
            with repro.client.Connection(
                "127.0.0.1", server.port, encodings=encodings
            ) as conn:
                assert conn.encoding == encodings[0]
                start.wait()
                for _ in range(BATCHES_PER_CLIENT):
                    for sql in HOT_QUERIES:
                        conn.query(sql)
        except Exception as exc:
            errors.append(repr(exc))

    threads = [threading.Thread(target=client) for _ in range(n_clients)]
    for t in threads:
        t.start()
    start.wait()
    watch = Stopwatch()
    for t in threads:
        t.join(timeout=300)
    wall = watch.elapsed()
    assert errors == []
    return wall, n_clients * BATCHES_PER_CLIENT * len(HOT_QUERIES)


def _run_multiplexed(server) -> tuple[float, list]:
    """K cursors on ONE connection, drained round-robin."""
    from repro.core.metrics import Stopwatch

    watch = Stopwatch()
    with repro.client.Connection("127.0.0.1", server.port) as conn:
        cursors = [conn.cursor(STREAM_SQL) for _ in range(MUX_STREAMS)]
        results: list = [[] for _ in cursors]
        live = set(range(len(cursors)))
        while live:
            for i in sorted(live):
                got = cursors[i].fetchmany(512)
                results[i].extend(got)
                if len(got) < 512:
                    live.discard(i)
    return watch.elapsed(), results


def _run_separate_connections(server) -> tuple[float, list]:
    """The same K streams, one connection each, drained in threads."""
    from repro.core.metrics import Stopwatch

    results: list = [None] * MUX_STREAMS
    errors: list = []

    def client(idx: int) -> None:
        try:
            with repro.client.Connection("127.0.0.1", server.port) as conn:
                results[idx] = conn.query(STREAM_SQL).rows
        except Exception as exc:
            errors.append(repr(exc))

    watch = Stopwatch()
    threads = [
        threading.Thread(target=client, args=(i,))
        for i in range(MUX_STREAMS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=300)
    wall = watch.elapsed()
    assert errors == []
    return wall, results


def _run_pool_contrast(server) -> dict:
    """Per-query connect() vs a warmed ConnectionPool."""
    from repro.core.metrics import Stopwatch

    watch = Stopwatch()
    for _ in range(POOL_QUERIES):
        with repro.client.Connection("127.0.0.1", server.port) as conn:
            conn.query(POOL_SQL)
    fresh_wall = watch.elapsed()
    with ConnectionPool(port=server.port, min_size=1, max_size=2) as pool:
        watch.restart()
        for _ in range(POOL_QUERIES):
            pool.query(POOL_SQL)
        pooled_wall = watch.elapsed()
        stats = pool.stats()
    return {
        "queries": POOL_QUERIES,
        "fresh_conn_qps": POOL_QUERIES / fresh_wall if fresh_wall else 0.0,
        "pooled_qps": POOL_QUERIES / pooled_wall if pooled_wall else 0.0,
        "pool_speedup": fresh_wall / pooled_wall if pooled_wall else 0.0,
        "reused": stats["reused"],
    }


#: Streamed-result repetitions per TTFB client: every repetition's
#: time-to-first-row lands in one shared registry histogram, so the
#: artifact reports a p50/p95/p99 distribution instead of a single
#: (noise-prone) minimum.
TTFB_ROUNDS = 4


def _measure_ttfb(server, results: list, idx: int, ttfb_hist) -> None:
    """One socket client: time-to-first-row of a streamed large result
    vs the same query fully materialized, on one connection.  Each
    round's TTFB is observed into the shared histogram."""
    from repro.core.metrics import Stopwatch

    with repro.client.Connection("127.0.0.1", server.port) as conn:
        watch = Stopwatch()
        best_ttfb = None
        for _ in range(TTFB_ROUNDS):
            watch.restart()
            with conn.cursor(STREAM_SQL) as cursor:
                first = cursor.fetchone()
                ttfb = watch.elapsed()
                rows = 1 + len(cursor.fetchall().rows)
            stream_total = watch.elapsed()
            assert first is not None
            ttfb_hist.observe(ttfb)
            if best_ttfb is None or ttfb < best_ttfb:
                best_ttfb = ttfb
        watch.restart()
        materialized = conn.query(STREAM_SQL)
        materialized_wall = watch.elapsed()
        assert len(materialized) == rows
        results[idx] = {
            "client": idx,
            "rows": rows,
            "ttfb_s": best_ttfb,
            "stream_s": stream_total,
            "materialized_s": materialized_wall,
        }


def test_wire_throughput(benchmark, tmp_path_factory):
    from repro import generate_csv, uniform_table_spec

    tmp = tmp_path_factory.mktemp("wire")
    n_rows = scaled_rows(20_000)
    path = tmp / "t.csv"
    schema = generate_csv(
        path, uniform_table_spec(n_attrs=6, n_rows=n_rows, width=8, seed=55)
    )
    config = PostgresRawConfig(
        server_port=0,
        memory_budget=256 * 1024 * 1024,
        max_concurrent_queries=8,
        admission_queue_depth=64,
    )

    def sweep():
        records = []
        with PostgresRawService(config) as service:
            service.register_csv("t", path, schema)
            warm = service.session()
            for sql in HOT_QUERIES + [STREAM_SQL, POOL_SQL]:
                warm.query(sql)
            server = RawServer(service).start()
            try:
                for n_clients in CLIENT_COUNTS:
                    wall_in, queries = _run_inprocess(service, n_clients)
                    wall_json, _ = _run_wire(
                        server, n_clients, ("json",)
                    )
                    wall_bin, _ = _run_wire(
                        server, n_clients, ("binary", "json")
                    )
                    qps_in = queries / wall_in if wall_in else float("inf")
                    qps_json = (
                        queries / wall_json if wall_json else float("inf")
                    )
                    qps_bin = (
                        queries / wall_bin if wall_bin else float("inf")
                    )
                    records.append(
                        {
                            "clients": n_clients,
                            "queries": queries,
                            "inproc_qps": qps_in,
                            "json_qps": qps_json,
                            "binary_qps": qps_bin,
                            "json_overhead_x": (
                                qps_in / qps_json if qps_json else 0.0
                            ),
                            "binary_overhead_x": (
                                qps_in / qps_bin if qps_bin else 0.0
                            ),
                        }
                    )
                # Wire bytes per encoding over the *identical* sweep
                # workloads (snapshotted before the binary-only legs
                # below add traffic): the apples-to-apples size story.
                sweep_bytes = dict(
                    server.connection_stats()["bytes_by_encoding"]
                )
                # Multiplexed cursors on one connection vs the same
                # K streams on K connections: row identity + timing.
                mux_wall, mux_rows = _run_multiplexed(server)
                sep_wall, sep_rows = _run_separate_connections(server)
                for got, reference in zip(mux_rows, sep_rows):
                    assert got == reference  # row-identical, in order
                mux = {
                    "streams": MUX_STREAMS,
                    "mux_one_conn_s": mux_wall,
                    "separate_conns_s": sep_wall,
                    "rows_per_stream": len(mux_rows[0]),
                }
                pool = _run_pool_contrast(server)
                # TTFB: two concurrent socket clients streaming a large
                # result over one shared service, every repetition
                # observed into a registry histogram.
                from repro.telemetry import MetricsRegistry

                ttfb_hist = MetricsRegistry().histogram(
                    "wire_ttfb_seconds"
                )
                ttfb_records: list = [None, None]
                threads = [
                    threading.Thread(
                        target=_measure_ttfb,
                        args=(server, ttfb_records, i, ttfb_hist),
                    )
                    for i in range(2)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(timeout=120)
                assert all(r is not None for r in ttfb_records)
                ttfb_summary = ttfb_hist.snapshot()
                server_stats = server.connection_stats()
                sched = service.scheduler.stats()
            finally:
                server.stop()
            # Clean shutdown: nothing leaked anywhere in the stack.
            assert service.cursor_stats()["open"] == 0
            assert sched["active"] == 0 and sched["waiting"] == 0
            assert server_stats["open"] <= 2  # TTFB conns may linger
        return {
            "throughput": records,
            "mux": mux,
            "pool": pool,
            "ttfb": ttfb_records,
            "ttfb_summary": ttfb_summary,
            "sweep_bytes": sweep_bytes,
            "server": server_stats,
        }

    report = benchmark.pedantic(sweep, rounds=1, iterations=1)
    records = report["throughput"]
    print_records(
        f"E14: wire qps by ROWS encoding vs in-process, {n_rows} rows x "
        f"6 attrs, {CORES} cores",
        records,
    )
    print_records(
        f"E14b: {MUX_STREAMS} multiplexed cursors on one connection vs "
        f"{MUX_STREAMS} separate connections",
        [report["mux"]],
    )
    print_records(
        "E14c: pooled vs per-query connections", [report["pool"]]
    )
    print_records(
        "E14d: per-connection TTFB, 2 concurrent socket clients "
        "streaming the full table",
        report["ttfb"],
    )
    benchmark.extra_info["wire_throughput"] = {
        k: v for k, v in report.items() if k != "server"
    }

    by_clients = {r["clients"]: r for r in records}
    bytes_by_encoding = report["sweep_bytes"]
    emit_bench_artifact(
        "wire_throughput",
        {
            "rows": n_rows,
            "inproc_qps_4_clients": by_clients[4]["inproc_qps"],
            "json_qps_4_clients": by_clients[4]["json_qps"],
            "binary_qps_4_clients": by_clients[4]["binary_qps"],
            "json_overhead_x": by_clients[4]["json_overhead_x"],
            "binary_overhead_x": by_clients[4]["binary_overhead_x"],
            "mux_one_conn_s": report["mux"]["mux_one_conn_s"],
            "separate_conns_s": report["mux"]["separate_conns_s"],
            "pooled_qps": report["pool"]["pooled_qps"],
            "fresh_conn_qps": report["pool"]["fresh_conn_qps"],
            "pool_speedup": report["pool"]["pool_speedup"],
            "ttfb_p50_s": report["ttfb_summary"]["p50"],
            "ttfb_p95_s": report["ttfb_summary"]["p95"],
            "ttfb_p99_s": report["ttfb_summary"]["p99"],
            "ttfb_observations": report["ttfb_summary"]["count"],
            "json_wire_bytes": bytes_by_encoding.get("json", 0),
            "binary_wire_bytes": bytes_by_encoding.get("binary", 0),
        },
    )

    ttfb_rows = report["ttfb"]
    assert len(ttfb_rows) == 2
    for row in ttfb_rows:
        # Delivery is incremental: the first row lands strictly before
        # the stream completes, and nothing is lost on the wire.
        assert row["ttfb_s"] < row["stream_s"]
        assert row["rows"] == n_rows
    # The streaming contract over the wire: the first row arrives
    # before the same query can fully materialize — the first frame is
    # on the socket while the server is still producing.  On a 1-core
    # host two contending clients can invert one pair by scheduling
    # noise, so the per-client gate needs real cores (same idiom as the
    # parallel/concurrent benchmarks).
    if CORES >= 2:
        for row in ttfb_rows:
            assert row["ttfb_s"] < row["materialized_s"]
    else:
        assert any(r["ttfb_s"] < r["materialized_s"] for r in ttfb_rows)
    # The wire must not collapse under concurrency: 4 clients never
    # drop below half of one client's throughput (binary path).
    assert by_clients[4]["binary_qps"] > by_clients[1]["binary_qps"] * 0.5
    # (Wire bytes per encoding stay informational: for small-integer
    # data an int64 vector is size-parity with its decimal text — the
    # binary win is the skipped per-value serialize/parse, i.e. qps.)
    assert bytes_by_encoding["binary"] > 0 and bytes_by_encoding["json"] > 0
    # The binary encoding must not be meaningfully slower than the
    # JSON floor — on multi-core hosts it should cut the overhead; the
    # hard gate tolerates scheduler noise.
    if CORES >= 2:
        assert (
            by_clients[4]["binary_qps"] > by_clients[4]["json_qps"] * 0.8
        )
    # The pool amortizes connect cost: pooled qps beats fresh-connect
    # qps (generously gated — localhost connects are cheap).
    assert report["pool"]["pooled_qps"] > report["pool"]["fresh_conn_qps"] * 0.9
