"""E1 / Figure 2 — The System Monitoring Panel.

Regenerates the demo's monitoring series: cache utilization (%),
positional-map storage and file-coverage as a sequence of queries
arrives.  Paper shape: both structures fill monotonically while budget
allows, then plateau; the coverage grid shows exactly the attributes the
workload touched.
"""


from repro import PostgresRaw, PostgresRawConfig
from repro.monitor import SystemMonitorPanel
from repro.workload import RandomSelectProjectWorkload

from .conftest import print_records


def test_fig2_monitoring_series(benchmark, bench_csv):
    path, schema = bench_csv

    def run_sequence():
        engine = PostgresRaw(
            PostgresRawConfig(cache_budget=8 * 1024 * 1024)
        )
        engine.register_csv("t", path, schema)
        panel = SystemMonitorPanel(engine.table_state("t"))
        workload = RandomSelectProjectWorkload(
            "t", schema, projection_width=2, seed=7
        )
        for spec in workload.queries(12):
            engine.query(spec.to_sql())
            panel.snapshot()
        return panel

    panel = benchmark.pedantic(run_sequence, rounds=1, iterations=1)
    records = [
        {
            "query": snap.query_index,
            "cache_util_pct": snap.cache_utilization * 100,
            "cache_entries": snap.cache_entries,
            "pm_kib": snap.pm_bytes / 1024,
            "pm_chunks": snap.pm_chunks,
            "pm_coverage_pct": snap.pm_coverage * 100,
        }
        for snap in panel.history
    ]
    print_records("Figure 2: System Monitoring Panel series", records)
    print()
    print(panel.render())
    benchmark.extra_info["figure2"] = records

    utils = [r["cache_util_pct"] for r in records]
    assert utils[-1] > 0
    assert all(b >= a for a, b in zip(utils, utils[1:]))  # fills up
    coverage = [r["pm_coverage_pct"] for r in records]
    assert coverage[-1] >= coverage[0]


def test_fig2_eviction_under_tight_budget(benchmark, bench_csv):
    """With a tight cache budget the utilization saturates near 100%
    and LRU turnover begins (the panel's steady state)."""
    path, schema = bench_csv

    def run_sequence():
        engine = PostgresRaw(PostgresRawConfig(cache_budget=600 * 1024))
        engine.register_csv("t", path, schema)
        for attr in range(10):
            engine.query(f"SELECT a{attr} FROM t")
        return engine.table_state("t")

    state = benchmark.pedantic(run_sequence, rounds=1, iterations=1)
    assert state.cache.evictions > 0
    assert state.cache.used_bytes <= 600 * 1024
    print(
        f"\ncache evictions={state.cache.evictions}, "
        f"final utilization={state.cache.utilization() * 100:.1f}%"
    )
