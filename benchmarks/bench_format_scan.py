"""E14 — multi-format in-situ scans and vertical persistence.

Prices the format-adapter refactor.  CSV and JSONL files carrying the
same rows are scanned cold (first touch builds the positional map) and
warm (map + cache hot); a third pair of arms prices vertical
persistence — a hot column promoted into the columnstore versus the
same warm scan with ``vp_enabled=False``.

Asserts JSONL answers are row-identical to CSV's on every arm and that
a vp-promoted scan never loses to the raw re-scan it replaces.
"""

from __future__ import annotations

from repro import PostgresRaw, PostgresRawConfig
from repro.catalog.schema import TableSchema
from repro.core.metrics import Stopwatch
from repro.rawio.writer import write_csv, write_jsonl

from .conftest import emit_bench_artifact, print_records, scaled_rows

SCHEMA = TableSchema.from_pairs(
    [("a", "integer"), ("b", "integer"), ("c", "text"), ("d", "float")]
)

SQL = "SELECT a, d FROM t WHERE b < 5000"

# The VP arms use a non-selective filter: under late materialization a
# selective scan parses projections only for selected rows, so their
# cached columns never reach full coverage and never promote.  A
# full-selectivity plan parses (and then promotes) every needed column.
VP_SQL = "SELECT a, d FROM t WHERE b < 10000"

#: Timed repetitions per warm arm (cold arms always run once).
REPEATS = 15


def _qps(engine, sql: str, repeats: int = REPEATS) -> float:
    watch = Stopwatch()
    for __ in range(repeats):
        engine.query(sql)
    wall = watch.elapsed()
    return repeats / wall if wall else float("inf")


def test_format_scan(benchmark, tmp_path_factory):
    tmp = tmp_path_factory.mktemp("format_scan")
    n_rows = scaled_rows(40_000)
    rows = [
        (i, i * 7 % 10_000, f"r{i % 97}", (i % 1000) / 8.0)
        for i in range(n_rows)
    ]
    csv_path = tmp / "t.csv"
    jsonl_path = tmp / "t.jsonl"
    write_csv(csv_path, rows, SCHEMA)
    write_jsonl(jsonl_path, rows, SCHEMA)

    plain = PostgresRawConfig()
    vp_config = PostgresRawConfig(
        memory_budget=256 * 1024 * 1024,
        vp_enabled=True,
        vp_min_accesses=2,
        vp_dir=str(tmp / "vp"),
    )

    def sweep():
        records = []
        expect = None
        # One engine per format: cold first touch, then warm repeats.
        for fmt, path, register in (
            ("csv", csv_path, "register_csv"),
            ("jsonl", jsonl_path, "register_jsonl"),
        ):
            with PostgresRaw(plain) as engine:
                getattr(engine, register)("t", path, SCHEMA)
                cold_watch = Stopwatch()
                got = engine.query(SQL).rows
                cold_s = cold_watch.elapsed()
                if expect is None:
                    expect = got
                else:
                    assert got == expect, f"{fmt} diverged from csv"
                warm = _qps(engine, SQL)
            records.append(
                {
                    "arm": f"{fmt}-cold",
                    "qps": 1.0 / cold_s if cold_s else 0.0,
                }
            )
            records.append({"arm": f"{fmt}-warm", "qps": warm})

        # Vertical persistence: the repeated projection crosses
        # vp_min_accesses, later scans come from the columnstore.
        with PostgresRaw(vp_config) as engine:
            engine.register_csv("t", csv_path, SCHEMA)
            expect_vp = engine.query(VP_SQL).rows
            for __ in range(2):
                assert engine.query(VP_SQL).rows == expect_vp
            assert "vp: served from columnstore" in engine.explain(VP_SQL)
            # Price the columnstore tier against a raw re-scan: drop
            # the binary cache before each repetition so the scan must
            # fall through to the promoted columns.
            state = engine.table_state("t")
            watch = Stopwatch()
            for __ in range(REPEATS):
                state.cache.invalidate()
                engine.query(VP_SQL)
            wall = watch.elapsed()
            qps_vp = REPEATS / wall if wall else float("inf")

        with PostgresRaw(plain) as engine:
            engine.register_csv("t", csv_path, SCHEMA)
            engine.query(VP_SQL)
            state = engine.table_state("t")
            watch = Stopwatch()
            for __ in range(REPEATS):
                state.cache.invalidate()
                engine.query(VP_SQL)
            wall = watch.elapsed()
            qps_raw = REPEATS / wall if wall else float("inf")

        records.append({"arm": "vp-promoted", "qps": qps_vp})
        records.append({"arm": "raw-rescan", "qps": qps_raw})
        return records

    records = benchmark.pedantic(sweep, rounds=1, iterations=1)
    by_arm = {r["arm"]: r["qps"] for r in records}
    vp_speedup = by_arm["vp-promoted"] / by_arm["raw-rescan"]
    jsonl_cold_ratio = by_arm["jsonl-cold"] / by_arm["csv-cold"]
    print_records(
        f"E14: format scans, {n_rows} rows, {REPEATS} repeats/arm "
        f"(vp speedup over raw re-scan: {vp_speedup:.1f}x)",
        records,
    )
    benchmark.extra_info["format_scan"] = records
    emit_bench_artifact(
        "format_scan",
        {
            "qps_csv_cold": by_arm["csv-cold"],
            "qps_csv_warm": by_arm["csv-warm"],
            "qps_jsonl_cold": by_arm["jsonl-cold"],
            "qps_jsonl_warm": by_arm["jsonl-warm"],
            "qps_vp_promoted": by_arm["vp-promoted"],
            "qps_raw_rescan": by_arm["raw-rescan"],
            "speedup_vp": vp_speedup,
            "jsonl_cold_ratio": jsonl_cold_ratio,
        },
    )

    # Serving promoted binary columns must beat re-tokenizing the file.
    assert by_arm["vp-promoted"] > by_arm["raw-rescan"]
