"""E3 / Part II "Query Adaptation" — epoch workload replay.

Select-Project queries organized into epochs, each epoch touching a
different part of the file.  Paper shape: latency spikes at every epoch
boundary (cold attributes) and drops within the epoch as the positional
map and cache adapt; tight budgets cause the previous epoch's state to
be evicted.
"""


from repro import PostgresRaw, PostgresRawConfig
from repro.workload import EpochWorkload

from .conftest import print_records


def test_epoch_adaptation_curve(benchmark, bench_csv):
    path, schema = bench_csv
    workload = EpochWorkload(
        "t",
        schema,
        n_epochs=3,
        queries_per_epoch=6,
        window_width=3,
        projection_width=2,
        seed=77,
    )

    def replay():
        engine = PostgresRaw(
            PostgresRawConfig(cache_budget=2 * 1024 * 1024)
        )
        engine.register_csv("t", path, schema)
        series = []
        for epoch_index, spec in workload.flat_queries():
            metrics = engine.query(spec.to_sql()).metrics
            series.append(
                {
                    "epoch": epoch_index,
                    "query": len(series),
                    "seconds": metrics.total_seconds,
                    "tokenizing": metrics.tokenizing_seconds,
                    "cache_hits": metrics.cache_hits,
                }
            )
        return series, engine.table_state("t")

    series, state = benchmark.pedantic(replay, rounds=1, iterations=1)
    print_records("Part II: Query Adaptation (per-query latency)", series)
    benchmark.extra_info["adaptation"] = series

    per_epoch = {}
    for row in series:
        per_epoch.setdefault(row["epoch"], []).append(row["seconds"])
    for epoch, times in per_epoch.items():
        tail_avg = sum(times[1:]) / len(times[1:])
        # Within every epoch, warmed queries beat the epoch opener.
        assert tail_avg < times[0], f"epoch {epoch} did not adapt"

    # Epoch openers pay tokenizing again (new attributes, cold).
    openers = [
        row for row in series if row["query"] in (0, 6, 12)
    ]
    assert all(row["tokenizing"] > 0 for row in openers[:1])


def test_epoch_eviction_turnover(benchmark, bench_csv):
    """Old epochs' attributes leave the structures under tight budgets —
    'old information may no longer be relevant and will be evicted'."""
    path, schema = bench_csv
    workload = EpochWorkload(
        "t", schema, n_epochs=3, queries_per_epoch=5, window_width=3, seed=5
    )

    def replay():
        engine = PostgresRaw(
            PostgresRawConfig(
                cache_budget=800 * 1024,
                positional_map_budget=900 * 1024,
            )
        )
        engine.register_csv("t", path, schema)
        snapshots = []
        for epoch in workload.epochs():
            for spec in epoch.queries:
                engine.query(spec.to_sql())
            cache = engine.table_state("t").cache
            snapshots.append(
                {
                    "epoch": epoch.index,
                    "window": ",".join(epoch.attributes),
                    "cached": ",".join(
                        f"a{a}" for a in cache.cached_attrs()
                    ),
                    "evictions": cache.evictions,
                }
            )
        return snapshots

    snapshots = benchmark.pedantic(replay, rounds=1, iterations=1)
    print_records("Part II: structure turnover across epochs", snapshots)
    assert snapshots[-1]["evictions"] > 0
    assert snapshots[0]["cached"] != snapshots[-1]["cached"]
