"""E15 — vectorized scan kernels vs the interpreted tokenize+parse path.

The PR 7 microbench: cold in-situ scans over three file shapes —

* **wide numeric** (32 integer attrs) — the tokenizing wall of Figure 3,
  where per-row ``str.split`` and per-value ``int()`` dominate;
* **narrow numeric** (4 attrs) — little tokenizing to save, bounds the
  kernels' fixed overhead;
* **string-heavy** (10 text attrs) — conversion is a no-op, so only the
  offsets-matrix tokenization is in play.

For each shape the same cold query runs on two fresh engines, kernels
on vs off, and the *tokenize+parse+convert* seconds (the buckets the
kernels replace) are compared.  Emits ``BENCH_tokenizer.json``.

The wide-numeric speedup is the PR's acceptance number (>= 3x at full
scale); tiny CI scales only sanity-check that the kernels win at all.
"""

from repro import (
    DataType,
    PostgresRaw,
    PostgresRawConfig,
    generate_csv,
    uniform_table_spec,
)

from .conftest import SCALE, emit_bench_artifact, print_records, scaled_rows

SHAPES = [
    ("wide", 32, DataType.INTEGER, 30_000),
    ("narrow", 4, DataType.INTEGER, 30_000),
    ("strings", 10, DataType.TEXT, 30_000),
]


def _cold_scan_seconds(path, schema, sql, kernels):
    eng = PostgresRaw(PostgresRawConfig(scan_kernels=kernels))
    eng.register_csv("t", path, schema)
    metrics = eng.query(sql).metrics
    buckets = metrics.component_seconds()
    hot = (
        buckets["tokenizing"] + buckets["parsing"] + buckets["convert"]
    )
    return hot, metrics.total_seconds


def test_kernel_vs_interpreted_tokenize(benchmark, tmp_path_factory):
    tmp = tmp_path_factory.mktemp("tok")

    def sweep():
        records = []
        for label, n_attrs, dtype, rows in SHAPES:
            n_rows = scaled_rows(rows)
            path = tmp / f"{label}.csv"
            schema = generate_csv(
                path,
                uniform_table_spec(
                    n_attrs, n_rows, dtype=dtype, width=8, seed=77
                ),
            )
            last = n_attrs - 1
            if dtype is DataType.INTEGER:
                sql = f"SELECT a1, a{last} FROM t WHERE a0 < 500000"
            else:
                sql = f"SELECT a1, a{last} FROM t"
            kern_hot, kern_total = _cold_scan_seconds(
                path, schema, sql, kernels=True
            )
            legacy_hot, legacy_total = _cold_scan_seconds(
                path, schema, sql, kernels=False
            )
            records.append(
                {
                    "shape": label,
                    "rows": n_rows,
                    "attrs": n_attrs,
                    "legacy_hot_s": legacy_hot,
                    "kernel_hot_s": kern_hot,
                    "speedup": (
                        legacy_hot / kern_hot if kern_hot else float("inf")
                    ),
                    "legacy_total_s": legacy_total,
                    "kernel_total_s": kern_total,
                }
            )
        return records

    records = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_records(
        "E15: cold-scan tokenize+parse+convert, kernels vs interpreted",
        records,
    )
    benchmark.extra_info["tokenizer"] = records
    by_shape = {r["shape"]: r for r in records}
    emit_bench_artifact(
        "tokenizer",
        {
            "rows": by_shape["wide"]["rows"],
            **{
                f"{shape}_speedup": by_shape[shape]["speedup"]
                for shape in by_shape
            },
            **{
                f"{shape}_kernel_hot_s": by_shape[shape]["kernel_hot_s"]
                for shape in by_shape
            },
        },
    )

    # Acceptance: the kernels collapse the wide-numeric hot path.  The
    # full >= 3x bar needs real row counts; scaled-down CI runs assert
    # a win, not the magnitude.
    wide = by_shape["wide"]["speedup"]
    floor = 3.0 if SCALE >= 0.5 else 1.2
    assert wide >= floor, (
        f"wide-numeric tokenize+convert speedup {wide:.2f}x < {floor}x"
    )
    for r in records:
        assert r["kernel_hot_s"] <= r["legacy_hot_s"] * 1.25, (
            f"{r['shape']}: kernels regressed the hot path"
        )
