"""E15 — sharded serving-tier throughput (repro.sharding).

The scale-out story: one raw file hash-partitioned across N worker
processes (each a full engine + wire server over its slice) versus the
same file behind a single server, measured through the shard-aware
client:

* **Scatter-gather aggregates** — 4 client threads hammer rotating
  partial-aggregatable queries (COUNT/SUM/AVG/GROUP BY with moving
  predicates, MVs off so every query really scans).  Each shard scans
  1/N of the rows on its own core, so on multi-core hosts the 4-shard
  cluster must clear 1.5x the single-server qps.
* **Routed point lookups** — partition-key equality queries touch one
  shard only; qps should stay roughly flat with shard count (no fan-
  out tax on the routed path).
* **TTFB contrast** — time-to-first-row of a routed streaming cursor
  (rows come straight off one socket) vs a scattered aggregate (the
  merge must gather every shard first): the routed path must win.

Every configuration must return byte-identical answers — the sweep
asserts one grouped aggregate row-for-row across 1, 2 and 4 shards.

Emits ``BENCH_sharded.json`` (see ``conftest.emit_bench_artifact``).
"""

import os
import statistics
import threading

from repro import PostgresRawConfig
from repro.sharding import ShardCluster

from .conftest import emit_bench_artifact, print_records, scaled_rows

CORES = os.cpu_count() or 1
SHARD_COUNTS = [1, 2, 4]
N_THREADS = 4
ROUNDS_PER_THREAD = 3

#: Scatter-gather shapes; ``{x}`` rotates per (thread, round) so no
#: result cache can short-circuit the scan.
AGG_TEMPLATES = [
    "SELECT COUNT(*) AS n, SUM(a1) AS s FROM t WHERE a2 < {x}",
    "SELECT AVG(a3) AS m, MIN(a4) AS lo FROM t WHERE a1 < {x}",
    "SELECT a0 % 10 AS g, SUM(a2) AS s FROM t "
    "WHERE a3 < {x} GROUP BY a0 % 10",
]

CHECK_SQL = (
    "SELECT a0 % 10 AS g, COUNT(*) AS n, SUM(a1) AS s FROM t "
    "GROUP BY a0 % 10 ORDER BY g"
)

TTFB_SAMPLES = 8


def _agg_sql(thread: int, round_: int, template_index: int) -> str:
    template = AGG_TEMPLATES[template_index % len(AGG_TEMPLATES)]
    x = 100_000 + 87_000 * (thread + 1) + 53_000 * round_
    return template.format(x=x % 1_000_000)


def _run_agg_clients(client) -> tuple[float, int]:
    from repro.core.metrics import Stopwatch

    start = threading.Barrier(N_THREADS + 1, timeout=60)
    errors: list = []

    def worker(thread: int):
        try:
            start.wait()
            for round_ in range(ROUNDS_PER_THREAD):
                for t in range(len(AGG_TEMPLATES)):
                    client.query(_agg_sql(thread, round_, t))
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(repr(exc))

    threads = [
        threading.Thread(target=worker, args=(i,))
        for i in range(N_THREADS)
    ]
    for t in threads:
        t.start()
    start.wait()
    watch = Stopwatch()
    for t in threads:
        t.join(timeout=300)
    wall = watch.elapsed()
    assert errors == []
    return wall, N_THREADS * ROUNDS_PER_THREAD * len(AGG_TEMPLATES)


def _run_routed_clients(client, keys: list[int]) -> tuple[float, int]:
    from repro.core.metrics import Stopwatch

    watch = Stopwatch()
    for key in keys:
        client.query(f"SELECT a0, a1 FROM t WHERE a0 = {key}")
    return watch.elapsed(), len(keys)


def _ttfb(client, sql: str) -> float:
    from repro.core.metrics import Stopwatch

    watch = Stopwatch()
    with client.cursor(sql) as cursor:
        cursor.fetchone()
        elapsed = watch.elapsed()
        cursor.close()
    return elapsed


def test_sharded_throughput(benchmark, tmp_path_factory):
    from repro import generate_csv, uniform_table_spec

    tmp = tmp_path_factory.mktemp("sharded")
    n_rows = scaled_rows(40_000)
    path = tmp / "t.csv"
    schema = generate_csv(
        path, uniform_table_spec(n_attrs=8, n_rows=n_rows, width=8, seed=77)
    )
    # MVs off: rotating predicates must hit the raw scan path on every
    # query, so qps measures the sharded scan fan-out, not a cache.
    config = PostgresRawConfig(server_port=0, mv_enabled=False)

    def sweep():
        records = []
        check_rows = {}
        ttfb = {}
        for shards in SHARD_COUNTS:
            cluster = ShardCluster(shards=shards, config=config)
            cluster.add_table("t", path, key="a0", schema=schema)
            cluster.start()
            try:
                with cluster.client(max_size=N_THREADS + 2) as client:
                    # Warm every shard's adaptive structures (and pick
                    # real partition-key values for the routed leg).
                    for t in range(len(AGG_TEMPLATES)):
                        client.query(_agg_sql(0, 0, t))
                    keys = [
                        row[0]
                        for row in client.query(
                            "SELECT a0 FROM t ORDER BY a0 LIMIT 24"
                        ).rows
                    ]
                    check_rows[shards] = client.query(CHECK_SQL).rows

                    agg_wall, agg_queries = _run_agg_clients(client)
                    routed_wall, routed_queries = _run_routed_clients(
                        client, keys
                    )
                    records.append(
                        {
                            "shards": shards,
                            "agg_qps": (
                                agg_queries / agg_wall
                                if agg_wall
                                else float("inf")
                            ),
                            "routed_qps": (
                                routed_queries / routed_wall
                                if routed_wall
                                else float("inf")
                            ),
                        }
                    )
                    if shards == SHARD_COUNTS[-1]:
                        key = keys[0]
                        routed_sql = (
                            f"SELECT a0, a1 FROM t WHERE a0 = {key}"
                        )
                        scatter_sql = _agg_sql(1, 1, 2)
                        ttfb = {
                            "routed_ttfb_s": statistics.median(
                                _ttfb(client, routed_sql)
                                for __ in range(TTFB_SAMPLES)
                            ),
                            "scatter_ttfb_s": statistics.median(
                                _ttfb(client, scatter_sql)
                                for __ in range(TTFB_SAMPLES)
                            ),
                        }
            finally:
                cluster.stop()
        return {
            "records": records,
            "check_rows": check_rows,
            "ttfb": ttfb,
        }

    report = benchmark.pedantic(sweep, rounds=1, iterations=1)
    records = report["records"]
    print_records(
        f"sharded serving qps ({n_rows} rows, {N_THREADS} client "
        f"threads, {CORES} cores)",
        records,
    )
    by_shards = {r["shards"]: r for r in records}
    speedup_4x = by_shards[4]["agg_qps"] / by_shards[1]["agg_qps"]
    ttfb = report["ttfb"]
    print_records(
        "routed vs scattered TTFB (4 shards)",
        [
            {
                "path": "routed (one shard streams)",
                "ttfb_s": ttfb["routed_ttfb_s"],
            },
            {
                "path": "scattered (gather then merge)",
                "ttfb_s": ttfb["scatter_ttfb_s"],
            },
        ],
    )
    emit_bench_artifact(
        "sharded",
        {
            "rows": n_rows,
            "client_threads": N_THREADS,
            "agg_qps_1_shard": by_shards[1]["agg_qps"],
            "agg_qps_2_shards": by_shards[2]["agg_qps"],
            "agg_qps_4_shards": by_shards[4]["agg_qps"],
            "routed_qps_1_shard": by_shards[1]["routed_qps"],
            "routed_qps_4_shards": by_shards[4]["routed_qps"],
            "agg_speedup_4_shards": speedup_4x,
            "routed_ttfb_s": ttfb["routed_ttfb_s"],
            "scatter_ttfb_s": ttfb["scatter_ttfb_s"],
        },
    )

    # Correctness before speed: every shard count returns the same
    # grouped aggregate, row for row.
    assert (
        report["check_rows"][1]
        == report["check_rows"][2]
        == report["check_rows"][4]
    )
    assert report["check_rows"][1]  # and it is not vacuously empty
    for record in records:
        assert record["agg_qps"] > 0 and record["routed_qps"] > 0
    # The scale-out gate: each shard scans 1/4 of the rows on its own
    # core, so with real cores the 4-shard cluster must clear 1.5x the
    # single server on scatter-gather aggregates.  On fewer cores the
    # workers time-slice one CPU and the fan-out is pure overhead, so
    # the gate needs the hardware (same idiom as the parallel-scan and
    # wire benchmarks).
    if CORES >= 4:
        assert speedup_4x >= 1.5, (
            f"4-shard aggregate qps only {speedup_4x:.2f}x single-node"
        )
    # The routed path pays no fan-out tax: point lookups through the 4-
    # shard cluster keep at least half the single-server qps (they
    # touch one shard; the planner and pool add only microseconds).
    assert (
        by_shards[4]["routed_qps"] > by_shards[1]["routed_qps"] * 0.4
    )
    # Streaming contrast: a routed cursor's first row arrives before a
    # scattered aggregate can finish its gather+merge.
    assert ttfb["routed_ttfb_s"] < ttfb["scatter_ttfb_s"]
