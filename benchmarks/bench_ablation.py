"""E6 — ablation of the NoDB components (the demo's enable/disable knobs).

"the user can enable or disable the NoDB components of PostgresRaw"

Four arms over the same warmed workload: full PM+C, positional map only,
cache only, neither (Baseline).  Paper shape: each component alone beats
the baseline; the combination wins; the map mainly kills tokenizing, the
cache additionally kills I/O + parsing + conversion.
"""

import pytest

from repro import PostgresRaw, PostgresRawConfig

from .conftest import print_records

QUERY = "SELECT a2, a6 FROM t WHERE a4 < 300000"

ARMS = [
    ("PM + Cache", PostgresRawConfig()),
    ("PM only", PostgresRawConfig.pm_only()),
    ("Cache only", PostgresRawConfig.cache_only()),
    ("Baseline (neither)", PostgresRawConfig.baseline()),
]


@pytest.fixture(scope="module")
def warmed_engines(bench_csv):
    path, schema = bench_csv
    engines = {}
    for name, config in ARMS:
        engine = PostgresRaw(config)
        engine.register_csv("t", path, schema)
        engine.query(QUERY)  # warm whatever the arm can warm
        engines[name] = engine
    return engines


def test_ablation_matrix(benchmark, warmed_engines):
    def run_all():
        return {
            name: engine.query(QUERY).metrics
            for name, engine in warmed_engines.items()
        }

    metrics = benchmark.pedantic(run_all, rounds=3, iterations=1)
    records = [
        {
            "arm": name,
            "total_s": m.total_seconds,
            "tokenizing_s": m.tokenizing_seconds,
            "parsing_s": m.parsing_seconds,
            "convert_s": m.convert_seconds,
            "io_s": m.io_seconds,
        }
        for name, m in metrics.items()
    ]
    print_records("E6: component ablation (warm queries)", records)
    benchmark.extra_info["ablation"] = records

    by_arm = {r["arm"]: r for r in records}
    # The map eliminates tokenizing.
    assert by_arm["PM only"]["tokenizing_s"] == 0.0
    assert by_arm["PM + Cache"]["tokenizing_s"] == 0.0
    # The baseline keeps paying it.
    assert by_arm["Baseline (neither)"]["tokenizing_s"] > 0
    # Every adaptive arm beats the baseline; the combination is best.
    base_total = by_arm["Baseline (neither)"]["total_s"]
    for arm in ("PM + Cache", "PM only", "Cache only"):
        assert by_arm[arm]["total_s"] < base_total
    assert (
        by_arm["PM + Cache"]["total_s"]
        <= min(by_arm["PM only"]["total_s"], by_arm["Cache only"]["total_s"])
        * 1.5
    )


@pytest.mark.parametrize("arm_name,config", ARMS, ids=[a for a, _ in ARMS])
def test_ablation_arm_warm_latency(benchmark, bench_csv, arm_name, config):
    """Individual timed arms (for the pytest-benchmark comparison table)."""
    path, schema = bench_csv
    engine = PostgresRaw(config)
    engine.register_csv("t", path, schema)
    engine.query(QUERY)
    benchmark(lambda: engine.query(QUERY))


SELECTIVE_ARMS = [
    ("all selective", PostgresRawConfig()),
    (
        "no selective tokenizing",
        PostgresRawConfig(selective_tokenizing=False),
    ),
    ("no selective parsing", PostgresRawConfig(selective_parsing=False)),
    (
        "no selective tuple formation",
        PostgresRawConfig(selective_tuple_formation=False),
    ),
]

#: Narrow query on a wide file: predicate on a0, project a5 — the
#: tokenize span (a0..a5) crosses four attributes the query never needs,
#: which is exactly what selective parsing refuses to convert.
SELECTIVE_QUERY = "SELECT a5 FROM t WHERE a0 < 100000"


def test_selective_mechanisms_ablation(benchmark, bench_csv):
    """DESIGN §5.2 — the three 'selective' mechanisms on cold queries.

    Paper shape: disabling selective tokenizing forces full-tuple splits
    (5x the fields for this query); disabling selective parsing converts
    every tokenized field; disabling selective tuple formation converts
    the projection for every row instead of the ~10% qualifying ones.
    """
    path, schema = bench_csv

    def run_all():
        results = {}
        for name, config in SELECTIVE_ARMS:
            engine = PostgresRaw(config)
            engine.register_csv("t", path, schema)
            results[name] = engine.query(SELECTIVE_QUERY).metrics
        return results

    metrics = benchmark.pedantic(run_all, rounds=1, iterations=1)
    records = [
        {
            "arm": name,
            "total_s": m.total_seconds,
            "fields_tokenized": m.fields_tokenized,
            "fields_converted": m.fields_converted,
        }
        for name, m in metrics.items()
    ]
    print_records("E6b: selective mechanisms (cold query)", records)
    benchmark.extra_info["selective"] = records

    by_arm = {r["arm"]: r for r in records}
    full = by_arm["all selective"]
    assert (
        by_arm["no selective tokenizing"]["fields_tokenized"]
        > full["fields_tokenized"] * 1.5
    )
    assert (
        by_arm["no selective parsing"]["fields_converted"]
        > full["fields_converted"] * 2
    )
    assert (
        by_arm["no selective tuple formation"]["fields_converted"]
        > full["fields_converted"] * 1.5
    )


def test_combination_policy_ablation(benchmark, bench_csv):
    """DESIGN §5.1 — the chunk-combination policy.

    With the policy on, querying two attributes that live in different
    chunks installs their combination as a dedicated chunk; off, the
    attributes stay scattered.
    """
    path, schema = bench_csv

    def run_arm(policy: bool):
        engine = PostgresRaw(
            PostgresRawConfig(
                pm_combination_policy=policy, enable_cache=False
            )
        )
        engine.register_csv("t", path, schema)
        engine.query("SELECT a1 FROM t")
        engine.query("SELECT a6 FROM t")
        engine.query("SELECT a1, a6 FROM t")  # triggers the policy
        warm = engine.query("SELECT a1, a6 FROM t").metrics.total_seconds
        chunks = {
            c.attrs for c in engine.table_state("t").positional_map.chunks()
        }
        return warm, chunks

    def run_both():
        return run_arm(True), run_arm(False)

    (with_s, with_chunks), (without_s, without_chunks) = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    records = [
        {
            "arm": "combination policy ON",
            "warm_s": with_s,
            "has_combined_chunk": (1, 6) in with_chunks,
        },
        {
            "arm": "combination policy OFF",
            "warm_s": without_s,
            "has_combined_chunk": (1, 6) in without_chunks,
        },
    ]
    print_records("E6c: chunk combination policy", records)
    benchmark.extra_info["combination"] = records
    assert (1, 6) in with_chunks
    assert (1, 6) not in without_chunks
