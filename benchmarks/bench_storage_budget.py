"""E7 — storage budget sweeps (the demo's space knobs).

"We allow the user to vary the available space for indexing and caching
in order to examine the impact of these parameters on the performance."

Paper shape: performance improves with budget until the working set
fits, then flattens; below the working set LRU thrashes and warm queries
degrade toward the baseline.
"""


from repro import PostgresRaw, PostgresRawConfig
from repro.workload import RandomSelectProjectWorkload

from .conftest import print_records

PM_BUDGETS = [0, 64 * 1024, 512 * 1024, 4 * 1024 * 1024, 64 * 1024 * 1024]
CACHE_BUDGETS = [
    0, 128 * 1024, 1024 * 1024, 8 * 1024 * 1024, 256 * 1024 * 1024
]


def _workload_times(engine, schema, n=8, seed=3):
    workload = RandomSelectProjectWorkload(
        "t", schema, projection_width=2, seed=seed
    )
    queries = [spec.to_sql() for spec in workload.queries(n)]
    for sql in queries:  # warm pass
        engine.query(sql)
    return sum(engine.query(sql).metrics.total_seconds for sql in queries)


def test_positional_map_budget_sweep(benchmark, bench_csv):
    path, schema = bench_csv

    def sweep():
        records = []
        for budget in PM_BUDGETS:
            engine = PostgresRaw(
                PostgresRawConfig(
                    positional_map_budget=budget, enable_cache=False
                )
            )
            engine.register_csv("t", path, schema)
            seconds = _workload_times(engine, schema)
            pm = engine.table_state("t").positional_map
            records.append(
                {
                    "pm_budget_kib": budget // 1024,
                    "warm_workload_s": seconds,
                    "chunks": pm.chunk_count,
                    "evictions": pm.evictions,
                    "rejected": pm.rejected_installs,
                }
            )
        return records

    records = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_records("E7a: positional map budget sweep", records)
    benchmark.extra_info["pm_sweep"] = records
    # More budget never hurts (within noise): the largest budget beats
    # the zero budget clearly.
    assert records[-1]["warm_workload_s"] < records[0]["warm_workload_s"]
    # Tight budgets show memory pressure: LRU churn or rejected installs.
    assert any(
        r["evictions"] > 0 or r["rejected"] > 0 for r in records[1:3]
    )


def test_cache_budget_sweep(benchmark, bench_csv):
    path, schema = bench_csv

    def sweep():
        records = []
        for budget in CACHE_BUDGETS:
            engine = PostgresRaw(
                PostgresRawConfig(
                    cache_budget=budget, enable_positional_map=False
                )
            )
            engine.register_csv("t", path, schema)
            seconds = _workload_times(engine, schema)
            cache = engine.table_state("t").cache
            records.append(
                {
                    "cache_budget_kib": budget // 1024,
                    "warm_workload_s": seconds,
                    "entries": cache.entry_count,
                    "evictions": cache.evictions,
                }
            )
        return records

    records = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_records("E7b: cache budget sweep", records)
    benchmark.extra_info["cache_sweep"] = records
    assert records[-1]["warm_workload_s"] < records[0]["warm_workload_s"]
