"""E12 — concurrent serving throughput (repro.service).

The serving layer's reason to exist: adaptive state built by one
client's queries serves *every* client, and once the table is covered,
queries only jump through shared structures under shared locks.  This
benchmark warms one table, then hammers the service with 1/2/4/8 client
threads issuing a mixed hot-query batch, and reports queries/sec and
the speedup over one thread.

Two effects compose on a multi-core host:

* read-path queries hold only *shared* locks, so they overlap freely;
* the hot work is numpy-heavy (predicate masks, takes, aggregates over
  cached binary columns), which releases the GIL for its inner loops.

Speedup assertions are gated on the cores actually available: a
single-core host can only verify correctness, bounded concurrency and
that the scheduler admits/settles every query.
"""

from __future__ import annotations

import os
import threading


from repro import PostgresRawConfig, PostgresRawService

from .conftest import emit_bench_artifact, print_records, scaled_rows

THREAD_COUNTS = [1, 2, 4, 8]
CORES = os.cpu_count() or 1

#: The hot batch: every query is coverable by the warmed structures.
HOT_QUERIES = [
    "SELECT SUM(a2) AS s FROM t WHERE a1 < 600000",
    "SELECT a0, a3 FROM t WHERE a2 < 150000",
    "SELECT AVG(a4) AS m FROM t WHERE a0 < 800000",
    "SELECT COUNT(*) AS n FROM t WHERE a3 < 400000",
]

#: Hot-batch repetitions per client thread.
BATCHES_PER_CLIENT = 6


def _run_clients(service, n_threads: int) -> tuple[float, int]:
    """Total wall seconds and query count for ``n_threads`` clients."""
    from repro.core.metrics import Stopwatch

    start = threading.Barrier(n_threads + 1, timeout=60)
    errors: list = []

    def client():
        session = service.session()
        try:
            start.wait()
            for _ in range(BATCHES_PER_CLIENT):
                for sql in HOT_QUERIES:
                    session.query(sql)
        except Exception as exc:
            errors.append(repr(exc))

    threads = [threading.Thread(target=client) for _ in range(n_threads)]
    for t in threads:
        t.start()
    start.wait()
    watch = Stopwatch()
    for t in threads:
        t.join(timeout=300)
    wall = watch.elapsed()
    assert errors == []
    return wall, n_threads * BATCHES_PER_CLIENT * len(HOT_QUERIES)


def test_concurrent_throughput(benchmark, tmp_path_factory):
    from repro import generate_csv, uniform_table_spec

    tmp = tmp_path_factory.mktemp("conc")
    n_rows = scaled_rows(30_000)
    path = tmp / "t.csv"
    schema = generate_csv(
        path, uniform_table_spec(n_attrs=6, n_rows=n_rows, width=8, seed=77)
    )
    config = PostgresRawConfig(
        memory_budget=256 * 1024 * 1024,
        max_concurrent_queries=8,
        admission_queue_depth=64,
    )

    def sweep():
        records = []
        with PostgresRawService(config) as service:
            service.register_csv("t", path, schema)
            warm = service.session()
            for sql in HOT_QUERIES:
                warm.query(sql)  # build map/cache: later queries are hot
            baseline_qps = None
            for n_threads in THREAD_COUNTS:
                wall, n_queries = _run_clients(service, n_threads)
                qps = n_queries / wall if wall else float("inf")
                if baseline_qps is None:
                    baseline_qps = qps
                records.append(
                    {
                        "threads": n_threads,
                        "queries": n_queries,
                        "wall_s": wall,
                        "qps": qps,
                        "speedup": qps / baseline_qps,
                    }
                )
            sched = service.scheduler.stats()
            assert sched["rejected"] == 0
            assert sched["admitted"] == sched["completed"]
            assert sched["peak_concurrency"] <= config.max_concurrent_queries
            lock = service.table_lock("t")
            records.append(
                {
                    "threads": "locks",
                    "queries": lock.read_acquisitions,
                    "wall_s": lock.read_contentions,
                    "qps": lock.write_acquisitions,
                    "speedup": lock.write_contentions,
                }
            )
        return records

    records = benchmark.pedantic(sweep, rounds=1, iterations=1)
    title = (
        f"E12: concurrent throughput, {n_rows} rows x 6 attrs, "
        f"{CORES} cores (last row: read acq/waits, write acq/waits)"
    )
    print_records(title, records)
    benchmark.extra_info["concurrent_throughput"] = records
    client_rows = [r for r in records if isinstance(r["threads"], int)]
    emit_bench_artifact(
        "concurrent_throughput",
        {
            **{f"qps_{r['threads']}_clients": r["qps"] for r in client_rows},
            **{
                f"speedup_{r['threads']}_clients": r["speedup"]
                for r in client_rows
            },
        },
    )

    by_threads = {r["threads"]: r for r in records}
    # The serving layer must never make a loaded service *slower* than
    # one client by more than scheduling noise allows.
    assert by_threads[8]["qps"] > by_threads[1]["qps"] * 0.5
    if CORES >= 4:
        # The acceptance gate needs real cores: 4 client threads on a
        # >=4-core host must clear 1.5x the single-client throughput.
        assert by_threads[4]["speedup"] > 1.5
