"""Many clients, one adaptive engine — the concurrent serving layer.

Eight client threads hammer one `PostgresRawService` over a cold file.
The first scans discover structure under exclusive locks; once the
positional map and cache cover the table, queries run in parallel on
the shared (read) path.  A single global `memory_budget` governs every
structure, and the governor/concurrency panels show where the bytes and
the lock traffic went.

Run:  PYTHONPATH=src python examples/concurrent_service.py
"""

import tempfile
import threading
from pathlib import Path

from repro import (
    PostgresRawConfig,
    PostgresRawService,
    generate_csv,
    uniform_table_spec,
)
from repro.monitor import render_concurrency_panel, render_governor_panel

N_CLIENTS = 8
QUERIES = [
    "SELECT a0, a1 FROM t WHERE a2 < 400000",
    "SELECT SUM(a3) AS s FROM t WHERE a1 < 700000",
    "SELECT COUNT(*) AS n FROM t",
    "SELECT a4, a5 FROM t WHERE a0 < 200000",
]


def main() -> None:
    tmp = Path(tempfile.mkdtemp(prefix="repro_service_"))
    path = tmp / "t.csv"
    schema = generate_csv(
        path, uniform_table_spec(n_attrs=6, n_rows=40_000, width=8, seed=5)
    )
    print(f"raw file: {path} ({path.stat().st_size >> 10} KiB), cold start\n")

    config = PostgresRawConfig(
        memory_budget=64 * 1024 * 1024,  # one budget for ALL adaptive state
        max_concurrent_queries=4,        # admission control
        admission_queue_depth=32,
    )

    with PostgresRawService(config) as service:
        service.register_csv("t", path, schema)

        def client(client_id: int) -> None:
            session = service.session()
            for i in range(3):
                sql = QUERIES[(client_id + i) % len(QUERIES)]
                result = session.query(sql)
                print(
                    f"  client {client_id} [{len(result):>5} rows, "
                    f"{result.metrics.total_seconds * 1e3:6.1f} ms] {sql}"
                )

        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(N_CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        print()
        print(render_governor_panel(service))
        print()
        print(render_concurrency_panel(service))


if __name__ == "__main__":
    main()
