"""Quickstart: query a raw CSV file with zero loading.

Generates a synthetic CSV, registers it with PostgresRaw (no data is
read at registration — that is the NoDB point), runs a few SQL queries
and shows how the same query gets cheaper as the engine adapts.

Run:  python examples/quickstart.py
"""

import tempfile
from pathlib import Path

from repro import PostgresRaw, generate_csv, uniform_table_spec


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro_quickstart_"))
    raw_file = workdir / "measurements.csv"

    # 1. A raw data file appears (here: 50k rows x 8 integer attributes).
    spec = uniform_table_spec(n_attrs=8, n_rows=50_000, seed=7)
    schema = generate_csv(raw_file, spec)
    print(f"raw file: {raw_file} ({raw_file.stat().st_size / 1024:.0f} KiB)")

    # 2. Register it. Nothing is read, parsed or loaded here.
    engine = PostgresRaw()
    engine.register_csv("m", raw_file, schema)

    # 3. Query immediately.
    result = engine.query(
        "SELECT a0, a3 FROM m WHERE a1 < 150000 ORDER BY a0 LIMIT 5"
    )
    print("\nfirst answer (data-to-query time = one query, no load):")
    print(result.format_table())

    # 4. Aggregates, grouping — the full plan runs over raw data.
    result = engine.query(
        "SELECT a2 % 10 AS bucket, COUNT(*) AS n, AVG(a4) AS mean_a4 "
        "FROM m GROUP BY a2 % 10 ORDER BY bucket"
    )
    print("\ngroup-by over the raw file:")
    print(result.format_table())

    # 5. Adaptation: repeat one query and watch the breakdown change.
    query = "SELECT a0, a3 FROM m WHERE a1 < 150000"
    print(f"\nadaptive behaviour for: {query}")
    print(f"{'run':>4} {'total_ms':>9} {'tokenize_ms':>12} "
          f"{'convert_ms':>11} {'io_ms':>7}")
    for run in range(4):
        metrics = engine.query(query).metrics
        print(
            f"{run:>4} {metrics.total_seconds * 1000:>9.1f} "
            f"{metrics.tokenizing_seconds * 1000:>12.1f} "
            f"{metrics.convert_seconds * 1000:>11.1f} "
            f"{metrics.io_seconds * 1000:>7.1f}"
        )

    state = engine.table_state("m")
    print(
        "\nlearned as a side effect of the queries: "
        f"{state.positional_map.chunk_count} positional chunks "
        f"({state.positional_map.used_bytes / 1024:.0f} KiB), "
        f"{state.cache.entry_count} cached columns "
        f"({state.cache.used_bytes / 1024:.0f} KiB)"
    )


if __name__ == "__main__":
    main()
