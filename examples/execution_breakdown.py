"""The Query Execution Breakdown panel — Figure 3 of the paper.

Runs the same Select-Project query through four configurations and
renders the stacked-bar breakdown: PostgreSQL-like (data pre-loaded),
the naive external-files Baseline, PostgresRaw on its first query, and
PostgresRaw with a warm positional map + cache.

Run:  python examples/execution_breakdown.py
"""

import tempfile
from pathlib import Path

from repro import (
    PostgresRaw,
    PostgresRawConfig,
    generate_csv,
    uniform_table_spec,
)
from repro.baselines import ConventionalDBMS, POSTGRESQL
from repro.monitor import BreakdownReport, render_breakdown

QUERY = "SELECT a0, a7 FROM t WHERE a3 < 200000"


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro_breakdown_"))
    raw_file = workdir / "t.csv"
    schema = generate_csv(
        raw_file, uniform_table_spec(n_attrs=10, n_rows=50_000, seed=5)
    )

    # PostgreSQL-like: pay loading first (reported, not in the bar).
    pg = ConventionalDBMS(POSTGRESQL, storage_dir=workdir / "pg")
    load_report = pg.load_csv("t", raw_file, schema)
    print(
        "PostgreSQL loaded the file first: "
        f"{load_report.total_seconds:.2f}s "
        f"(tokenize {load_report.tokenize_seconds:.2f}s, "
        f"convert {load_report.convert_seconds:.2f}s, "
        f"write {load_report.write_seconds:.2f}s, "
        f"analyze {load_report.analyze_seconds:.2f}s)"
    )

    baseline = PostgresRaw(PostgresRawConfig.baseline())
    baseline.register_csv("t", raw_file, schema)

    cold = PostgresRaw()
    cold.register_csv("t", raw_file, schema)

    warm = PostgresRaw()
    warm.register_csv("t", raw_file, schema)
    warm.query(QUERY)  # adapt once

    report = BreakdownReport()
    report.add("PostgreSQL (loaded)", pg.query(QUERY).metrics)
    report.add("Baseline (ext files)", baseline.query(QUERY).metrics)
    report.add("PostgresRaw cold", cold.query(QUERY).metrics)
    report.add("PostgresRaw PM+C", warm.query(QUERY).metrics)

    print(f"\nquery: {QUERY}\n")
    print(render_breakdown(report))

    print("\nraw numbers (seconds):")
    for record in report.as_table():
        parts = ", ".join(
            f"{k}={v}" for k, v in record.items() if k != "system"
        )
        print(f"  {record['system']:<22} {parts}")


if __name__ == "__main__":
    main()
