"""Wire-protocol quickstart / smoke: a real server, a real socket.

Boots a :class:`repro.RawServer` on localhost (ephemeral port) over a
freshly generated raw CSV, runs queries through the blocking
:mod:`repro.client` — materialized, streamed, abandoned mid-stream,
multiplexed (several cursors on one connection, protocol v2's binary
columnar ROWS encoding), through both negotiated encodings, and via a
:class:`repro.client.ConnectionPool` — verifies row-for-row identity
with the in-process path, then shuts down and asserts nothing leaked:
no open cursors, no busy scheduler slots, no open connections.  CI
runs this as the wire smoke gate.

Run:  python examples/wire_quickstart.py
"""

import tempfile
from pathlib import Path

import repro.client
from repro import (
    PostgresRawConfig,
    PostgresRawService,
    RawServer,
    generate_csv,
    uniform_table_spec,
)
from repro.monitor import render_connections_panel


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro_wire_"))
    raw_file = workdir / "measurements.csv"
    spec = uniform_table_spec(n_attrs=8, n_rows=20_000, seed=7)
    schema = generate_csv(raw_file, spec)
    print(f"raw file: {raw_file} ({raw_file.stat().st_size / 1024:.0f} KiB)")

    config = PostgresRawConfig(server_port=0, batch_size=2048)
    with PostgresRawService(config) as service:
        service.register_csv("m", raw_file, schema)
        server = RawServer(service).start()
        print(f"server on {server.host}:{server.port}")
        try:
            sql = "SELECT a0, a1 FROM m WHERE a2 < 500000"
            reference = service.query(sql).rows

            with repro.client.Connection("127.0.0.1", server.port) as conn:
                # Materialized over the wire == in-process, row for row.
                result = conn.query(sql)
                assert result.rows == reference, "wire rows diverged!"
                print(f"materialized: {len(result)} rows, identical rows")

                # Streamed: first rows arrive while the server produces.
                with conn.cursor(sql) as cursor:
                    first = cursor.fetchone()
                    rest = cursor.fetchall().rows
                assert [first] + rest == reference
                ttfb = cursor.metrics.time_to_first_batch
                print(
                    "streamed: first row after "
                    f"{ttfb * 1000:.1f} ms, {1 + len(rest)} rows total"
                )

                # Abandon a stream mid-way: CLOSE releases the server-
                # side cursor (and its table locks) immediately.
                cursor = conn.cursor("SELECT a0 FROM m")
                cursor.fetchone()
                cursor.close()
                assert service.cursor_stats()["open"] == 0
                print("abandoned stream closed server-side")

                # Multiplexed: three cursors on ONE connection, frames
                # demultiplexed by qid, results row-identical.
                assert conn.encoding == "binary"  # negotiated default
                mux_sql = [
                    sql,
                    "SELECT a3 FROM m WHERE a4 < 250000",
                    "SELECT a5, a6 FROM m WHERE a7 < 750000",
                ]
                cursors = [conn.cursor(s) for s in mux_sql]
                mux_rows = [c.fetchall().rows for c in reversed(cursors)]
                for s, rows in zip(reversed(mux_sql), mux_rows):
                    assert rows == service.query(s).rows, "mux diverged!"
                print(
                    f"multiplexed: {len(cursors)} cursors on one "
                    f"connection ({conn.encoding} encoding), identical rows"
                )

            # The JSON floor answers identically to the binary default.
            with repro.client.Connection(
                "127.0.0.1", server.port, encodings=("json",)
            ) as floor:
                assert floor.encoding == "json"
                assert floor.query(sql).rows == reference
            print("json floor: negotiated and identical")

            # Pooled connections skip the per-query connect cost.
            with repro.client.ConnectionPool(
                port=server.port, min_size=1, max_size=2
            ) as pool:
                for _ in range(4):
                    assert pool.query(sql).rows == reference
                stats = pool.stats()
                assert stats["opened"] == 1 and stats["reused"] >= 3
                print(
                    f"pool: {stats['reused']} checkouts reused "
                    f"{stats['opened']} connection"
                )

            print()
            print(render_connections_panel(server))
        finally:
            server.stop()

        # The smoke gate: clean shutdown leaks nothing.
        cursors = service.cursor_stats()
        sched = service.scheduler.stats()
        connections = server.connection_stats()
        assert cursors["open"] == 0, f"leaked cursors: {cursors}"
        assert sched["active"] == 0, f"leaked scheduler slots: {sched}"
        assert sched["waiting"] == 0, f"stuck waiters: {sched}"
        assert sched["admitted"] == sched["completed"], f"unbalanced: {sched}"
        assert connections["open"] == 0, f"leaked connections: {connections}"
    print()
    print("wire smoke OK: clean shutdown, no leaked cursors or slots")


if __name__ == "__main__":
    main()
