"""Live updates — the demo's Updates scenario (Part II).

The raw file is modified *outside* the engine (as if with a text
editor): rows are appended, and later the file is replaced wholesale.
PostgresRaw detects each change before the next query and reconciles:
appends extend the positional map / cache incrementally, a rewrite
invalidates them.

Run:  python examples/live_updates.py
"""

import tempfile
from pathlib import Path

from repro import (
    Column,
    DataType,
    PostgresRaw,
    TableSchema,
    append_csv_rows,
    write_csv,
)

SCHEMA = TableSchema(
    [
        Column("sensor", DataType.INTEGER),
        Column("day", DataType.DATE),
        Column("reading", DataType.FLOAT),
    ]
)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro_updates_"))
    raw_file = workdir / "telemetry.csv"

    rows = [
        (s, 15_000 + d, float(s * 10 + d))
        for s in range(1, 4)
        for d in range(5)
    ]
    write_csv(raw_file, rows, SCHEMA)

    engine = PostgresRaw()
    engine.register_csv("telemetry", raw_file, SCHEMA)

    count = engine.query("SELECT COUNT(*) AS n FROM telemetry").scalar()
    print(f"initial file: {count} rows")
    first = engine.query(
        "SELECT sensor, MAX(reading) AS peak FROM telemetry "
        "GROUP BY sensor ORDER BY sensor"
    )
    print(first.format_table())

    # --- someone appends new readings with a "text editor" -------------
    appended = [(9, 15_010, 999.5), (9, 15_011, 1000.25)]
    append_csv_rows(raw_file, appended, SCHEMA)
    print("\n>>> two rows appended to the file externally")

    metrics = engine.query("SELECT COUNT(*) AS n FROM telemetry").metrics
    count = engine.query("SELECT COUNT(*) AS n FROM telemetry").scalar()
    print(
        f"next query sees {count} rows; reconciliation converted only "
        f"{metrics.fields_converted} field(s) — the appended tail"
    )
    peaks = engine.query(
        "SELECT sensor, MAX(reading) AS peak FROM telemetry "
        "GROUP BY sensor ORDER BY sensor"
    )
    print(peaks.format_table())

    # --- the file is replaced with new data ("pointer to a new file") --
    write_csv(raw_file, [(42, 15_500, 3.14)], SCHEMA)
    print("\n>>> file rewritten from scratch externally")
    result = engine.query("SELECT * FROM telemetry")
    print(result.format_table())
    state = engine.table_state("telemetry")
    print(
        "structures were invalidated and relearned: map now covers "
        f"{state.positional_map.n_rows} row(s)"
    )


if __name__ == "__main__":
    main()
