"""Sharded serving-tier quickstart / smoke: a real cluster, real sockets.

Partitions a freshly generated raw CSV across a 2-shard
:class:`repro.sharding.ShardCluster` (one engine + wire server per
worker process), connects through the cluster's DSN with
:func:`repro.connect`, and drives the shard-aware client:

* a scattered aggregate (decomposed into per-shard partials, re-merged
  through the engine's own aggregation operators);
* a routed partition-key point lookup (one shard, forwarded verbatim);
* a scattered ordered scan streamed through a cursor;
* the coordinator's relayed STATS rendered as the shard panel.

Every answer is checked row-for-row against a single-node engine over
the unsplit file, then the cluster shuts its workers down.  CI runs
this as the sharded smoke gate.

Run:  python examples/sharded_quickstart.py
"""

import tempfile
from pathlib import Path

import repro
from repro import PostgresRaw, generate_csv, uniform_table_spec
from repro.monitor import render_shard_panel
from repro.sharding import ShardCluster


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro_shards_"))
    raw_file = workdir / "measurements.csv"
    spec = uniform_table_spec(n_attrs=8, n_rows=20_000, seed=7)
    schema = generate_csv(raw_file, spec)
    print(f"raw file: {raw_file} ({raw_file.stat().st_size / 1024:.0f} KiB)")

    # The single-node reference: one engine over the unsplit file.
    single = PostgresRaw()
    single.register_csv("m", raw_file, schema)

    cluster = ShardCluster(shards=2)
    cluster.add_table("m", raw_file, key="a0", schema=schema)
    with cluster:
        dsn = cluster.dsn()
        print(f"cluster DSN: {dsn}")
        with repro.connect(dsn) as client:
            # Scattered aggregate: per-shard partials, merged client-side.
            agg = (
                "SELECT a0 % 10 AS g, COUNT(*) AS n, AVG(a1) AS m "
                "FROM m GROUP BY a0 % 10 ORDER BY g"
            )
            print(client.explain(agg))
            assert client.query(agg).rows == single.query(agg).rows
            print("scattered aggregate: 10 groups, identical rows")

            # Routed point lookup: the planner pins it to one shard.
            key = single.query("SELECT a0 FROM m LIMIT 1").scalar()
            point = f"SELECT a0, a1 FROM m WHERE a0 = {key}"
            print(client.explain(point).splitlines()[0])
            assert sorted(client.query(point).rows) == sorted(
                single.query(point).rows
            )
            print("routed point lookup: identical rows")

            # Scattered ordered scan, streamed through a cursor.
            scan = (
                "SELECT a0, a2 FROM m WHERE a3 < 300000 "
                "ORDER BY a0, a2, a1 LIMIT 500"
            )
            with client.cursor(scan) as cursor:
                streamed = cursor.fetchall().rows
            assert streamed == single.query(scan).rows
            print(f"streamed scatter scan: {len(streamed)} rows, identical")

            print(render_shard_panel(client.stats()))
    print("cluster stopped; all workers joined")


if __name__ == "__main__":
    main()
