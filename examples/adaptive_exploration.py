"""Exploratory analysis with epochs — Part II of the demo.

A scientist skims through a wide raw file: each "epoch" of the session
focuses on a different slice of attributes.  The monitoring panel
(Figure 2 of the paper) shows the positional map and cache following the
workload — filling, shifting and evicting under a tight budget.

Run:  python examples/adaptive_exploration.py
"""

import tempfile
from pathlib import Path

from repro import (
    PostgresRaw,
    PostgresRawConfig,
    generate_csv,
    uniform_table_spec,
)
from repro.monitor import SystemMonitorPanel
from repro.workload import EpochWorkload


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro_explore_"))
    raw_file = workdir / "wide.csv"
    schema = generate_csv(
        raw_file, uniform_table_spec(n_attrs=12, n_rows=40_000, seed=3)
    )

    # Budgets deliberately too small for the whole table: the structures
    # must *follow* the exploration instead of holding everything.
    engine = PostgresRaw(
        PostgresRawConfig(
            cache_budget=2 * 1024 * 1024,
            positional_map_budget=3 * 1024 * 1024,
        )
    )
    engine.register_csv("w", raw_file, schema)
    panel = SystemMonitorPanel(engine.table_state("w"))

    workload = EpochWorkload(
        "w",
        schema,
        n_epochs=3,
        queries_per_epoch=5,
        window_width=4,
        projection_width=2,
        seed=42,
    )

    for epoch in workload.epochs():
        print(f"\n--- epoch {epoch.index}: exploring {epoch.attributes} ---")
        for spec in epoch.queries:
            metrics = engine.query(spec.to_sql()).metrics
            panel.snapshot()
            print(
                f"  {spec.to_sql()[:68]:<68} "
                f"{metrics.total_seconds * 1000:7.1f} ms "
                f"(tokenize {metrics.tokenizing_seconds * 1000:6.1f} ms)"
            )
        print()
        print(panel.render())

    print("\ncache utilization series (Figure 2):")
    for query_index, pct in panel.cache_utilization_series():
        bar = "#" * int(pct / 2)
        print(f"  q{query_index:<3} {bar} {pct:.1f}%")


if __name__ == "__main__":
    main()
