"""The friendly race — Part III of the demo.

Five contestants get the same raw file and the same query sequence at
the same "starting shot": PostgresRaw (zero init), PostgreSQL-like
(load + ANALYZE), MySQL-like (cheap load), DBMS X-like (column store,
zone maps + statistics = "tuned"), and the external-files mode.

Run:  python examples/friendly_race.py
"""

import tempfile
from pathlib import Path

from repro import generate_csv, uniform_table_spec
from repro.baselines import DBMS_X, MYSQL, POSTGRESQL
from repro.workload import (
    ConventionalContestant,
    ExternalFilesContestant,
    FriendlyRace,
    PostgresRawContestant,
    RandomSelectProjectWorkload,
)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro_race_"))
    raw_file = workdir / "race.csv"
    schema = generate_csv(
        raw_file, uniform_table_spec(n_attrs=10, n_rows=60_000, seed=11)
    )
    print(
        f"course: {raw_file.stat().st_size / (1024 * 1024):.1f} MiB raw file, "
        "10 queries, data NOT loaded into any system"
    )

    queries = RandomSelectProjectWorkload(
        "t", schema, projection_width=2, seed=23
    ).queries(10)

    race = FriendlyRace("t", raw_file, schema)
    report = race.run(
        [
            PostgresRawContestant(),
            ConventionalContestant(POSTGRESQL, storage_dir=workdir / "pg"),
            ConventionalContestant(MYSQL, storage_dir=workdir / "my"),
            ConventionalContestant(DBMS_X, storage_dir=workdir / "dx"),
            ExternalFilesContestant(),
        ],
        queries,
    )

    print()
    print(report.render())
    print()
    header = f"{'system':<16} {'init':>8} {'first answer':>13} {'total':>8}"
    print(header)
    print("-" * len(header))
    for row in report.as_table():
        print(
            f"{row['system']:<16} {row['init_s']:>7.3f}s "
            f"{row['data_to_query_s']:>12.3f}s {row['total_s']:>7.3f}s"
        )

    lanes = {lane.name: lane for lane in report.lanes}
    pg = lanes["PostgreSQL"]
    raw = lanes["PostgresRaw"]
    print(
        f"\nwhile PostgreSQL was still loading ({pg.init_seconds:.2f}s), "
        "PostgresRaw had already answered "
        f"{raw.answered_by(pg.init_seconds)} of {len(queries)} queries"
    )


if __name__ == "__main__":
    main()
